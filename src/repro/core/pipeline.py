"""End-to-end preprocessing pipeline (Algorithm 1).

:class:`PreprocessingPipeline` wires every stage of the paper's
framework over the dataflow engine:

1. preselection of relevant message types (lines 2-3);
2. join with translation tuples + row-wise interpretation (lines 4-6);
3. per-signal splitting and gateway deduplication (lines 7-9);
4. constraint reduction (lines 10-11);
5. extensions (line 12);
6. classification + type-dependent branch processing (lines 13-28);
7. merge to the homogeneous output ``R_out`` (line 29).

The pipeline is parameterized once per domain via
:class:`PipelineConfig` and then applied to any number of traces -- the
"one-time parameterization" of the paper's abstract. Every run records
a :class:`repro.obs.RunReport` -- per-stage wall-time spans with
row-in/row-out attributes, selectivity/reduction gauges and the
executor's task/retry/fault metrics -- exposed as
:attr:`PipelineResult.report`; the flat :attr:`PipelineResult.timings`
and :attr:`PipelineResult.counts` dicts are derived views kept for the
evaluation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import RunReport

from repro.core.branches import BranchConfig, R_COLUMNS, process_branch
from repro.core.classification import SequenceClassifier
from repro.core.extension import ExtensionSet, apply_extensions
from repro.core.interpretation import count_truncated, drop_truncated, interpret
from repro.core.preselection import preselect
from repro.core.reduction import ConstraintSet, reduce_signal
from repro.core.representation import build_state_representation, merge_results
from repro.core.rules import RuleCatalog
from repro.core.splitting import equality_split, split_signal_types


class PipelineError(ValueError):
    """Raised for pipeline misconfiguration."""


@dataclass(frozen=True)
class PipelineConfig:
    """One domain's parameterization of the framework.

    Parameters
    ----------
    catalog:
        ``U_comb`` -- the translation tuples of the signals this domain
        analyzes (Sec. 3.1).
    constraints:
        ``C`` -- reduction constraints (Sec. 4.1).
    extensions:
        ``E`` -- extension rules (Sec. 4.1).
    branch_config:
        Knobs of the α/β/γ processing (Sec. 4.2).
    dedup_channels:
        Apply the gateway equality check ``e`` and process one channel
        per signal type only (the evaluation's setting).
    interpretation_strategy:
        ``"join"`` (the paper's relational formulation of line 4) or
        ``"fused"`` (broadcast flat-map; same output, fewer stages).
    short_payload:
        ``"raise"`` (default: a truncated payload aborts the run with
        :class:`~repro.protocols.signalcodec.ShortPayloadError`),
        ``"skip"`` (affected signal rows are dropped and counted in the
        ``pipeline.interpret.short_payload_skipped`` counter) or
        ``"keep"`` (affected rows stay in ``K_s`` carrying the
        :data:`~repro.core.rules.TRUNCATED` sentinel -- they classify
        as nominal evidence downstream -- counted in the
        ``pipeline.interpret.short_payload_kept`` counter). The latter
        two are the lossy-trace settings.
    drop_exact_duplicates:
        Drop exact ``K_s`` duplicates -- identical ``(t, v, s_id,
        b_id)`` rows, as produced by store-and-forward gateways
        replaying frames without jitter -- before splitting, so they
        cannot double-count reduction statistics. Counted in the
        ``pipeline.interpret.exact_duplicates_dropped`` counter.
    """

    catalog: RuleCatalog
    constraints: ConstraintSet = field(default_factory=ConstraintSet)
    extensions: ExtensionSet = field(default_factory=ExtensionSet)
    branch_config: BranchConfig = field(default_factory=BranchConfig)
    dedup_channels: bool = True
    interpretation_strategy: str = "join"
    short_payload: str = "raise"
    drop_exact_duplicates: bool = True

    def __post_init__(self):
        if len(self.catalog) == 0:
            raise PipelineError("catalog must contain at least one signal")
        if self.interpretation_strategy not in ("join", "fused"):
            raise PipelineError(
                "interpretation_strategy must be 'join' or 'fused'"
            )
        if self.short_payload not in ("raise", "skip", "keep"):
            raise PipelineError(
                "short_payload must be 'raise', 'skip' or 'keep'"
            )


@dataclass
class SignalOutcome:
    """Everything the pipeline derived for one signal type."""

    signal_id: str
    classification: object
    groups: list  # ChannelGroup list from the equality split
    rows_before_reduction: int
    rows_after_reduction: int
    result_rows: list  # homogeneous R rows
    extension_table: object  # W engine table


@dataclass
class PipelineResult:
    """Output of one pipeline run."""

    k_s: object  # interpreted signal table (cached)
    outcomes: dict  # s_id -> SignalOutcome
    r_out: object  # merged homogeneous table (R_COLUMNS)
    timings: dict  # stage name -> seconds (derived from report spans)
    counts: dict  # diagnostic row counts per stage
    report: object = None  # repro.obs.RunReport of this run

    def state_representation(self, signal_order=None):
        """The Table 4 pivot of ``R_out``."""
        return build_state_representation(self.r_out, signal_order)

    def outcome(self, signal_id):
        return self.outcomes[signal_id]

    def classification_summary(self):
        """s_id -> (data type, branch) for every processed signal."""
        return {
            s_id: (o.classification.data_type, o.classification.branch)
            for s_id, o in self.outcomes.items()
        }


class PreprocessingPipeline:
    """Algorithm 1, parameterized per domain and engine-agnostic."""

    def __init__(self, config):
        if not isinstance(config, PipelineConfig):
            raise PipelineError("config must be a PipelineConfig")
        self.config = config
        self.classifier = SequenceClassifier(config.branch_config.classifier)

    # -- stages exposed individually (used by benchmarks) ------------------
    def preselect(self, k_b):
        """Lines 2-3."""
        return preselect(k_b, self.config.catalog)

    def interpret(self, k_pre, on_short=None):
        """Lines 4-6."""
        if on_short is None:
            # short_payload values coincide with interpret's on_short
            # modes: raise aborts, skip drops, keep retains TRUNCATED.
            on_short = self.config.short_payload
        return interpret(
            k_pre,
            self.config.catalog,
            strategy=self.config.interpretation_strategy,
            on_short=on_short,
        )

    def extract_signals(self, k_b, cache=True):
        """Lines 3-6: the signal-extraction prefix measured in Table 6."""
        k_s = self.interpret(self.preselect(k_b))
        return k_s.cache() if cache else k_s

    # -- full run ---------------------------------------------------------------
    #: The seven Algorithm-1 stages, in execution order; each one gets a
    #: span with rows_in/rows_out attributes in the run report.
    STAGES = (
        "preselect", "interpret", "split", "reduce", "extend", "branch",
        "merge",
    )

    def run(self, k_b, report=None):
        """Execute Algorithm 1 on a raw trace table ``K_b``.

        *report*, when given, is the :class:`~repro.obs.RunReport` to
        record into (callers batching many traces aggregate this way);
        by default each run gets a fresh one, returned as
        :attr:`PipelineResult.report`.
        """
        if report is None:
            report = RunReport("pipeline.run")
        recorder = report.spans
        registry = report.metrics
        counts = {}
        context = k_b.context
        report.set_meta(
            signals=len(set(self.config.catalog.signal_ids())),
            interpretation_strategy=self.config.interpretation_strategy,
            dedup_channels=self.config.dedup_channels,
        )

        k_b_rows = k_b.count()
        with recorder.span("preselect") as span:
            k_pre = self.preselect(k_b).cache()
        counts["k_pre"] = k_pre.count()
        span.set(rows_in=k_b_rows, rows_out=counts["k_pre"])
        if k_b_rows:
            registry.set_gauge(
                "pipeline.preselect.selectivity", counts["k_pre"] / k_b_rows
            )

        with recorder.span("interpret") as span:
            if self.config.short_payload == "skip":
                # Interpret in keep mode so truncated rows can be counted
                # before they are dropped from K_s.
                k_s_raw = self.interpret(k_pre, on_short="keep").cache()
                truncated = count_truncated(k_s_raw)
                k_s = (
                    drop_truncated(k_s_raw).cache() if truncated else k_s_raw
                )
                registry.counter(
                    "pipeline.interpret.short_payload_skipped"
                ).inc(truncated)
            elif self.config.short_payload == "keep":
                k_s = self.interpret(k_pre).cache()
                registry.counter(
                    "pipeline.interpret.short_payload_kept"
                ).inc(count_truncated(k_s))
            else:
                k_s = self.interpret(k_pre).cache()
        counts["k_s"] = k_s.count()
        if self.config.drop_exact_duplicates:
            # distinct() repartitions (changing row order), so only swap
            # in the deduped table when duplicates actually exist.
            distinct_k_s = k_s.distinct().cache()
            distinct_rows = distinct_k_s.count()
            duplicates = counts["k_s"] - distinct_rows
            if duplicates:
                k_s = distinct_k_s
                counts["k_s"] = distinct_rows
            registry.counter(
                "pipeline.interpret.exact_duplicates_dropped"
            ).inc(duplicates)
        span.set(rows_in=counts["k_pre"], rows_out=counts["k_s"])

        with recorder.span("split") as split_span:
            splits_before = context.executor.metrics.splits
            per_signal = split_signal_types(
                k_s, sorted(set(self.config.catalog.signal_ids()))
            )
            splits = {}
            for s_id, table in per_signal.items():
                if self.config.dedup_channels:
                    splits[s_id] = equality_split(table, s_id)
                else:
                    from repro.core.splitting import SplitResult

                    splits[s_id] = SplitResult(
                        s_id, table.sort(["t"]), groups=[]
                    )
            # Per-signal splitting is a single routed pass: this gauge
            # counts shuffle stages spent splitting (1 for the s_id
            # split + 1 per deduped signal's b_id split), not one per
            # signal type as the old filter fan-out cost.
            registry.set_gauge(
                "pipeline.split.shuffle_stages",
                context.executor.metrics.splits - splits_before,
            )

        outcomes = {}
        branch_tables = []
        extension_tables = []
        total_before = 0
        total_after = 0
        total_extension_rows = 0
        total_branch_rows = 0
        for s_id in sorted(splits):
            split = splits[s_id]
            constraints = self.config.constraints.for_signal(s_id)
            ext_rules = self.config.extensions.for_signal(s_id)
            result_rows = []
            before = 0
            after = 0
            w_tables = []
            for group, table in split.tables():
                with recorder.span("reduce"):
                    before += table.count()
                    k_red = reduce_signal(table, constraints).cache()
                    after += k_red.count()

                with recorder.span("extend"):
                    w_table = apply_extensions(k_red, ext_rules)
                    w_tables.append(w_table)

                with recorder.span("branch"):
                    ordered_rows = k_red.sort(["t"]).collect()
                    classification = self._classify_rows(
                        k_red.schema, ordered_rows
                    )
                    result_rows.extend(
                        process_branch(
                            ordered_rows,
                            k_red.schema,
                            classification,
                            self.config.branch_config,
                        )
                    )
            merged_w = w_tables[0]
            for extra in w_tables[1:]:
                merged_w = merged_w.union(extra)
            extension_tables.append(merged_w)
            total_extension_rows += merged_w.count()
            total_branch_rows += len(result_rows)
            total_before += before
            total_after += after
            outcomes[s_id] = SignalOutcome(
                signal_id=s_id,
                classification=classification,
                groups=split.groups,
                rows_before_reduction=before,
                rows_after_reduction=after,
                result_rows=result_rows,
                extension_table=merged_w,
            )
            branch_tables.append(
                context.table_from_rows(list(R_COLUMNS), result_rows)
            )
        split_span.set(rows_in=counts["k_s"], rows_out=total_before)
        if counts["k_s"]:
            registry.set_gauge(
                "pipeline.split.dedup_ratio", total_before / counts["k_s"]
            )
        reduce_span = recorder.find("reduce")
        if reduce_span is not None:
            reduce_span.set(rows_in=total_before, rows_out=total_after)
        if total_before:
            registry.set_gauge(
                "pipeline.reduce.reduction_ratio", total_after / total_before
            )
        extend_span = recorder.find("extend")
        if extend_span is not None:
            extend_span.set(rows_in=total_after, rows_out=total_extension_rows)
        branch_span = recorder.find("branch")
        if branch_span is not None:
            branch_span.set(rows_in=total_after, rows_out=total_branch_rows)

        with recorder.span("merge") as span:
            r_out = merge_results(
                context, branch_tables, extension_tables
            ).cache()
        counts["r_out"] = r_out.count()
        span.set(
            rows_in=total_branch_rows + total_extension_rows,
            rows_out=counts["r_out"],
        )

        for name in self.STAGES:
            stage_span = recorder.find(name)
            attrs = stage_span.attrs if stage_span is not None else {}
            registry.counter(
                "pipeline.{}.rows_in".format(name)
            ).inc(attrs.get("rows_in", 0))
            registry.counter(
                "pipeline.{}.rows_out".format(name)
            ).inc(attrs.get("rows_out", 0))
        # Executor metrics are executor-lifetime (a context reused across
        # runs keeps accumulating); with one context per run they read as
        # per-run values.
        report.merge_registry(context.executor.obs)

        timings = {
            name: recorder.seconds(name) for name in self.STAGES
        }
        return PipelineResult(
            k_s=k_s,
            outcomes=outcomes,
            r_out=r_out,
            timings=timings,
            counts=counts,
            report=report,
        )

    def _classify_rows(self, schema, ordered_rows):
        t_i = schema.index_of("t")
        v_i = schema.index_of("v")
        from repro.core.classification import classify

        times = [r[t_i] for r in ordered_rows]
        values = [r[v_i] for r in ordered_rows]
        return classify(times, values, self.config.branch_config.classifier)
