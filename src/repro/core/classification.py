"""Type-dependent classification (Sec. 4.2, Table 3).

Each reduced sequence ``K_red`` is classified by the criteria
``Z = (z_type, z_rate, z_num, z_val)``:

* ``z_type`` ∈ {S, N} -- String or Numeric values;
* ``z_rate`` ∈ {H, L} -- change rate above/below a threshold ``T``
  measured as ``n / Δt`` over *active segments* (Eq. 2);
* ``z_num`` -- number of distinct values;
* ``z_val`` -- whether values carry a comparable valence (orderable).

plus the affiliation ``z_aff`` ∈ {F, V} distinguishing functional values
from validity values, used by the β/γ splits. The branch assignment
reproduces Table 3 exactly; combinations outside the table fall back to
the γ branch (no transformation), which is safe because γ only relabels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import median as _median

#: z_type values.
STRING_TYPE = "S"
NUMERIC_TYPE = "N"
#: z_rate values.
HIGH_RATE = "H"
LOW_RATE = "L"
#: Processing branches.
ALPHA = "alpha"
BETA = "beta"
GAMMA = "gamma"

#: Data-type names of Table 3.
NUMERIC = "numeric"
ORDINAL = "ordinal"
NOMINAL = "nominal"
BINARY = "binary"


@dataclass(frozen=True)
class Criteria:
    """A computed ``Z`` tuple for one sequence."""

    z_type: str
    z_rate: str
    z_num: int
    z_val: bool

    def as_tuple(self):
        return (self.z_type, self.z_rate, self.z_num, self.z_val)


@dataclass(frozen=True)
class ClassifierConfig:
    """Parameters of the criteria computation.

    ``rate_threshold`` is the paper's ``T`` ("determined by domain
    knowledge"): values per second above which a numeric signal counts as
    fast-changing. ``activity_gap_factor`` bounds active segments: a gap
    larger than this factor times the median gap ends a segment.
    ``ordinal_vocabularies`` lists label sets considered orderable, so
    string sequences like low/medium/high classify as ordinal.
    ``validity_values`` defines the affiliation-V vocabulary.
    """

    rate_threshold: float = 1.0
    activity_gap_factor: float = 10.0
    ordinal_vocabularies: tuple = (
        ("off", "low", "medium", "high"),
        ("low", "medium", "high"),
        ("min", "mid", "max"),
        ("level0", "level1", "level2", "level3", "level4"),
        # Binary vocabularies: two-valued signals with comparable valence
        # (Table 3 requires z_val for the binary rows).
        ("OFF", "ON"),
        ("off", "on"),
        ("false", "true"),
        ("inactive", "active"),
        ("closed", "open"),
    )
    validity_values: frozenset = frozenset(
        {
            "invalid",
            "error",
            "not_available",
            "snd",  # Signal Not Defined
            "init",
            "fault",
        }
    )


def compute_criteria(times, values, config=None):
    """Compute ``Z`` for a time-ordered sequence of (t, v)."""
    config = config or ClassifierConfig()
    functional = [v for v in values if v not in config.validity_values]
    basis = functional if functional else list(values)
    z_type = (
        NUMERIC_TYPE
        if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in basis)
        else STRING_TYPE
    )
    z_num = len(set(basis))
    z_rate = _change_rate(times, config)
    if z_type == NUMERIC_TYPE:
        z_val = True
    else:
        z_val = _orderable(set(map(str, basis)), config)
    return Criteria(z_type, z_rate, z_num, z_val)


def _change_rate(times, config):
    """Eq. 2: H if n/Δt over active segments exceeds the threshold T."""
    if len(times) < 2:
        return LOW_RATE
    gaps = [b - a for a, b in zip(times, times[1:])]
    positive = [g for g in gaps if g > 0]
    if not positive:
        return HIGH_RATE  # all simultaneous: infinitely fast
    # Shared nearest-rank median so classification and profiling agree
    # on median_gap for identical input (the old // 2 indexing took the
    # upper middle element for even-length sequences).
    median_gap = _median(positive)
    limit = config.activity_gap_factor * median_gap
    active_duration = sum(g for g in gaps if g <= limit)
    n = sum(1 for g in gaps if g <= limit) + 1
    if active_duration <= 0:
        return HIGH_RATE
    return HIGH_RATE if n / active_duration > config.rate_threshold else LOW_RATE


def _orderable(labels, config):
    for vocabulary in config.ordinal_vocabularies:
        if labels <= set(vocabulary):
            return True
    # Numeric-looking strings are orderable too.
    try:
        for label in labels:
            float(label)
        return True
    except (TypeError, ValueError):
        return False


#: Table 3, row by row: (z_type, z_rate matcher, z_num matcher, z_val)
#: -> (data type, branch). ``None`` matches any rate.
_TABLE3 = (
    (NUMERIC_TYPE, HIGH_RATE, "many", True, NUMERIC, ALPHA),
    (NUMERIC_TYPE, LOW_RATE, "many", True, ORDINAL, BETA),
    (STRING_TYPE, None, "many", True, ORDINAL, BETA),
    (STRING_TYPE, None, "two", True, BINARY, GAMMA),
    (STRING_TYPE, None, "many", False, NOMINAL, GAMMA),
    (NUMERIC_TYPE, None, "two", True, BINARY, GAMMA),
)


@dataclass(frozen=True)
class Classification:
    """Result: the criteria, the inferred data type and the branch."""

    criteria: Criteria
    data_type: str
    branch: str


def classify(times, values, config=None):
    """Assign a sequence to a processing branch per Table 3."""
    criteria = compute_criteria(times, values, config)
    for z_type, z_rate, num_kind, z_val, data_type, branch in _TABLE3:
        if criteria.z_type != z_type:
            continue
        if z_rate is not None and criteria.z_rate != z_rate:
            continue
        if num_kind == "many" and criteria.z_num <= 2:
            continue
        if num_kind == "two" and criteria.z_num != 2:
            continue
        if criteria.z_val != z_val:
            continue
        return Classification(criteria, data_type, branch)
    # Outside Table 3 (e.g. constant signals with z_num == 1, or numeric
    # sequences without valence): treat as nominal pass-through.
    return Classification(criteria, NOMINAL, GAMMA)


@dataclass(frozen=True)
class SequenceClassifier:
    """Reusable classifier bound to one configuration."""

    config: ClassifierConfig = field(default_factory=ClassifierConfig)

    def classify_table(self, table, order_by="t", value_column="v"):
        """Classify an engine table holding one signal's K_red."""
        ordered = table.sort([order_by])
        t_i = ordered.schema.index_of(order_by)
        v_i = ordered.schema.index_of(value_column)
        rows = ordered.collect()
        times = [r[t_i] for r in rows]
        values = [r[v_i] for r in rows]
        return classify(times, values, self.config)

    def affiliation_mask(self, values):
        """Per-element affiliation: True where functional (F), False (V)."""
        validity = self.config.validity_values
        return [v not in validity for v in values]
