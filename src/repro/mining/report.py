"""Verification reports.

Sec. 4.4: detected anomalies "can be ranked in terms of severity and
presented to the developer". This module assembles everything the
pipeline and the mining applications derived from one trace into a
single markdown report: data-set summary, per-signal classification and
reduction outcomes, outliers with state context, cycle-time violations,
rare transitions and anomaly hot-spots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mining.anomaly import StateAnomalyDetector
from repro.mining.diagnosis import find_cycle_violations, find_outliers
from repro.mining.transitions import TransitionGraph


@dataclass
class ReportOptions:
    """What to include and how much of it."""

    max_outliers: int = 10
    max_violations: int = 10
    max_anomalies: int = 5
    max_rare_transitions: int = 5
    transition_columns: tuple = None  # None = all nominal/binary signals
    anomaly_quantile: float = 0.02
    state_rows: int = 0  # rows of the state table to embed (0 = none)


@dataclass
class VerificationReport:
    """Structured report content plus markdown rendering."""

    title: str
    sections: list = field(default_factory=list)  # (heading, lines)

    def add_section(self, heading, lines):
        self.sections.append((heading, list(lines)))

    def to_markdown(self):
        out = ["# {}".format(self.title), ""]
        for heading, lines in self.sections:
            out.append("## {}".format(heading))
            out.append("")
            out.extend(lines)
            out.append("")
        return "\n".join(out)


def generate_report(result, title="Trace verification report", options=None):
    """Build a :class:`VerificationReport` from a pipeline result."""
    options = options or ReportOptions()
    report = VerificationReport(title=title)

    # -- run summary ---------------------------------------------------------
    counts = result.counts
    report.add_section(
        "Run summary",
        [
            "* trace rows after preselection: {}".format(counts.get("k_pre")),
            "* interpreted signal instances: {}".format(counts.get("k_s")),
            "* homogeneous output rows: {}".format(counts.get("r_out")),
            "* stage seconds: {}".format(
                {k: round(v, 3) for k, v in result.timings.items()}
            ),
        ],
    )

    # -- per-signal outcomes ----------------------------------------------------
    lines = [
        "| signal | data type | branch | rows before | rows after | channels |",
        "|---|---|---|---|---|---|",
    ]
    for s_id in sorted(result.outcomes):
        o = result.outcomes[s_id]
        channels = "; ".join(
            "{}→{}".format(g.representative, list(g.corresponding))
            if g.corresponding
            else str(g.representative)
            for g in o.groups
        )
        lines.append(
            "| {} | {} | {} | {} | {} | {} |".format(
                s_id,
                o.classification.data_type,
                o.classification.branch,
                o.rows_before_reduction,
                o.rows_after_reduction,
                channels,
            )
        )
    report.add_section("Signals", lines)

    # -- outliers ---------------------------------------------------------------
    findings = find_outliers(result)
    lines = []
    for f in findings[: options.max_outliers]:
        context = ", ".join(
            "{}={}".format(k, v)
            for k, v in sorted(f.state_at.items())
            if k != "t" and v is not None
        )
        lines.append(
            "* t={:.3f}s `{}` on `{}`: **v={}** — state: {}".format(
                f.timestamp, f.signal_id, f.channel_id, f.value, context
            )
        )
    if len(findings) > options.max_outliers:
        lines.append(
            "* … {} more".format(len(findings) - options.max_outliers)
        )
    report.add_section(
        "Potential errors (outliers): {}".format(len(findings)),
        lines or ["none detected"],
    )

    # -- cycle violations ----------------------------------------------------------
    violations = find_cycle_violations(result)
    lines = [
        "* t={:.3f}s `{}`: gap {:.1f}x expected cycle".format(
            v.timestamp, v.signal_id, v.factor
        )
        for v in violations[: options.max_violations]
    ]
    if len(violations) > options.max_violations:
        lines.append(
            "* … {} more".format(len(violations) - options.max_violations)
        )
    report.add_section(
        "Cycle-time violations: {}".format(len(violations)),
        lines or ["none detected (add CycleViolationExtension rules to check)"],
    )

    # -- transitions + anomalies over the state representation -------------------
    representation = result.state_representation()
    columns = options.transition_columns
    if columns is None:
        columns = tuple(
            s_id
            for s_id, o in sorted(result.outcomes.items())
            if o.classification.branch == "gamma"
        )
    if columns:
        graph = TransitionGraph.from_representation(representation, columns)
        rare = graph.rare_transitions(max_count=1)
        lines = [
            "* {} → {} ({}x)".format(dict(u), dict(v), c)
            for u, v, c in rare[: options.max_rare_transitions]
        ]
        report.add_section(
            "Rare transitions over {} (of {} total)".format(
                list(columns), graph.total_transitions
            ),
            lines or ["none — every observed transition recurs"],
        )

    detector = StateAnomalyDetector(
        quantile=options.anomaly_quantile, min_rows=20
    )
    anomalies = detector.detect(representation)
    lines = []
    for a in anomalies[: options.max_anomalies]:
        column, value, frequency = a.rare_items[0]
        lines.append(
            "* t={:.3f}s severity={:.1f}: `{}={}` (freq {:.3f})".format(
                a.timestamp, a.severity, column, value, frequency
            )
        )
    report.add_section(
        "Anomaly hot-spots: {}".format(len(anomalies)),
        lines or ["state table too small or uniform"],
    )

    if options.state_rows:
        report.add_section(
            "State representation (first {} rows)".format(options.state_rows),
            [representation.to_markdown(max_rows=options.state_rows)],
        )
    return report
