"""Downstream Data Mining applications of the state representation."""

from repro.mining.anomaly import Anomaly, StateAnomalyDetector
from repro.mining.association import (
    Apriori,
    AssociationRule,
    AssociationRuleMiner,
    Item,
    transactions_from_states,
)
from repro.mining.diagnosis import (
    CycleViolation,
    OutlierFinding,
    find_cycle_violations,
    find_outliers,
    summarize_findings,
)
from repro.mining.report import (
    ReportOptions,
    VerificationReport,
    generate_report,
)
from repro.mining.transitions import TransitionGraph, state_key

__all__ = [
    "AssociationRuleMiner",
    "AssociationRule",
    "Apriori",
    "Item",
    "transactions_from_states",
    "TransitionGraph",
    "state_key",
    "StateAnomalyDetector",
    "Anomaly",
    "find_outliers",
    "find_cycle_violations",
    "OutlierFinding",
    "CycleViolation",
    "summarize_findings",
    "generate_report",
    "VerificationReport",
    "ReportOptions",
]
