"""Association Rule Mining on state representations (Sec. 4.4).

"Association Rule Mining can be used to detect IF-THEN rules, when each
row is considered an item-set and columns are used as antecedents" --
e.g. ``IF T < -10 and WiperActivated THEN WiperErrorBlocked``.

Implements Apriori from scratch: each state-representation row becomes a
transaction of ``column=value`` items; frequent itemsets are grown
level-wise with candidate pruning; rules are scored by support,
confidence and lift.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations


class MiningError(ValueError):
    """Raised for invalid mining parameters."""


@dataclass(frozen=True)
class Item:
    """One ``column = value`` proposition."""

    column: str
    value: str

    def __str__(self):
        return "{}={}".format(self.column, self.value)


@dataclass(frozen=True)
class AssociationRule:
    """An IF-THEN rule with its quality measures."""

    antecedent: frozenset  # of Item
    consequent: frozenset  # of Item
    support: float
    confidence: float
    lift: float

    def __str__(self):
        return "IF {} THEN {} (sup={:.3f}, conf={:.3f}, lift={:.2f})".format(
            " and ".join(sorted(map(str, self.antecedent))),
            " and ".join(sorted(map(str, self.consequent))),
            self.support,
            self.confidence,
            self.lift,
        )


def transactions_from_states(states, columns=None, skip_none=True):
    """Turn state dicts (from ``StateRepresentation.iter_states``) into
    transactions (frozensets of :class:`Item`). The time column is
    excluded."""
    out = []
    for state in states:
        items = []
        for column, value in state.items():
            if column == "t":
                continue
            if columns is not None and column not in columns:
                continue
            if skip_none and value is None:
                continue
            items.append(Item(column, str(value)))
        out.append(frozenset(items))
    return out


@dataclass(frozen=True)
class Apriori:
    """Level-wise frequent itemset mining.

    Parameters
    ----------
    min_support:
        Minimum fraction of transactions containing an itemset.
    max_length:
        Largest itemset size to grow (bounds the search).
    """

    min_support: float = 0.1
    max_length: int = 4

    def __post_init__(self):
        if not 0 < self.min_support <= 1:
            raise MiningError("min_support must be in (0, 1]")
        if self.max_length < 1:
            raise MiningError("max_length must be >= 1")

    def frequent_itemsets(self, transactions):
        """Mapping itemset (frozenset) -> support."""
        n = len(transactions)
        if n == 0:
            return {}
        threshold = self.min_support * n
        # L1
        counts = {}
        for transaction in transactions:
            for item in transaction:
                counts[item] = counts.get(item, 0) + 1
        current = {
            frozenset([item]): c for item, c in counts.items() if c >= threshold
        }
        frequent = dict(current)
        length = 1
        while current and length < self.max_length:
            length += 1
            candidates = self._generate_candidates(current, length)
            if not candidates:
                break
            counts = {c: 0 for c in candidates}
            for transaction in transactions:
                for candidate in candidates:
                    if candidate <= transaction:
                        counts[candidate] += 1
            current = {
                itemset: c for itemset, c in counts.items() if c >= threshold
            }
            frequent.update(current)
        return {
            itemset: count / n for itemset, count in frequent.items()
        }

    def _generate_candidates(self, previous_level, length):
        """Join step + prune step of classic Apriori."""
        itemsets = sorted(previous_level, key=lambda s: sorted(map(str, s)))
        candidates = set()
        for i, a in enumerate(itemsets):
            for b in itemsets[i + 1 :]:
                union = a | b
                if len(union) != length:
                    continue
                # Prune: all (length-1)-subsets must be frequent.
                if all(
                    frozenset(sub) in previous_level
                    for sub in combinations(union, length - 1)
                ):
                    candidates.add(union)
        return candidates


@dataclass(frozen=True)
class AssociationRuleMiner:
    """Mines IF-THEN rules from state representations."""

    min_support: float = 0.1
    min_confidence: float = 0.8
    max_length: int = 4

    def __post_init__(self):
        if not 0 < self.min_confidence <= 1:
            raise MiningError("min_confidence must be in (0, 1]")

    def mine(self, state_representation, columns=None):
        """All rules meeting the thresholds, best confidence first."""
        transactions = transactions_from_states(
            state_representation.iter_states(), columns=columns
        )
        return self.mine_transactions(transactions)

    def mine_transactions(self, transactions):
        apriori = Apriori(self.min_support, self.max_length)
        supports = apriori.frequent_itemsets(transactions)
        rules = []
        for itemset, support in supports.items():
            if len(itemset) < 2:
                continue
            for size in range(1, len(itemset)):
                for antecedent_items in combinations(sorted(itemset, key=str), size):
                    antecedent = frozenset(antecedent_items)
                    consequent = itemset - antecedent
                    base = supports.get(antecedent)
                    if not base:
                        continue
                    confidence = support / base
                    if confidence < self.min_confidence:
                        continue
                    consequent_support = supports.get(consequent)
                    lift = (
                        confidence / consequent_support
                        if consequent_support
                        else float("inf")
                    )
                    rules.append(
                        AssociationRule(
                            antecedent, consequent, support, confidence, lift
                        )
                    )
        rules.sort(key=lambda r: (-r.confidence, -r.support, str(r)))
        return rules

    def rules_for_consequent(self, rules, column, value=None):
        """Filter rules whose consequent mentions *column* (e.g. an error
        signal), to "inspect causes of errors"."""
        out = []
        for rule in rules:
            for item in rule.consequent:
                if item.column == column and (
                    value is None or item.value == str(value)
                ):
                    out.append(rule)
                    break
        return out
