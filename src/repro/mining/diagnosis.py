"""Error inspection helpers (Sec. 4.4, first application).

"Outliers as potential errors are automatically discovered with our
framework which allows to check the state of the car when the outlier
occurred and the chain of states prior to it. Thus, the cause of an
error can be isolated. ... by extending traces with expected cycle
times, locations of violations of such times can be detected."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.branches import KIND_OUTLIER
from repro.engine.expressions import col


@dataclass(frozen=True)
class OutlierFinding:
    """One outlier with its surrounding vehicle state."""

    timestamp: float
    signal_id: str
    channel_id: str
    value: object
    state_at: dict  # full vehicle state when it occurred
    prior_states: tuple  # chain of states before it (most recent last)


def find_outliers(result, max_prior_states=3, signal_order=None):
    """Locate all outliers in a pipeline result with their state context.

    Parameters
    ----------
    result:
        A :class:`~repro.core.pipeline.PipelineResult`.
    max_prior_states:
        Length of the state chain reported before each outlier.
    """
    outlier_rows = result.r_out.filter(col("kind") == KIND_OUTLIER).collect()
    representation = result.state_representation(signal_order)
    states = list(representation.iter_states())
    findings = []
    for t, s_id, b_id, _kind, value, _trend in sorted(outlier_rows):
        at_index = None
        for i, state in enumerate(states):
            if state["t"] <= t:
                at_index = i
            else:
                break
        state_at = states[at_index] if at_index is not None else {}
        lo = max(0, (at_index or 0) - max_prior_states)
        prior = tuple(states[lo:at_index]) if at_index else ()
        findings.append(
            OutlierFinding(
                timestamp=t,
                signal_id=str(s_id),
                channel_id=str(b_id),
                value=value,
                state_at=state_at,
                prior_states=prior,
            )
        )
    return findings


@dataclass(frozen=True)
class CycleViolation:
    """One detected cycle-time violation."""

    timestamp: float
    signal_id: str
    channel_id: str
    factor: float  # observed gap / expected cycle


def find_cycle_violations(result, suffix="CycleViolation"):
    """Collect cycle-time violations from extension outputs.

    Requires the pipeline to be parameterized with
    :class:`~repro.core.extension.CycleViolationExtension` rules; their
    W rows carry the gap/cycle factor.
    """
    violations = []
    for outcome in result.outcomes.values():
        rows = outcome.extension_table.collect()
        schema = outcome.extension_table.schema
        t_i = schema.index_of("t")
        v_i = schema.index_of("v")
        w_i = schema.index_of("w_id")
        s_i = schema.index_of("s_id")
        b_i = schema.index_of("b_id")
        for row in rows:
            if not str(row[w_i]).endswith(suffix):
                continue
            violations.append(
                CycleViolation(
                    timestamp=row[t_i],
                    signal_id=str(row[s_i]),
                    channel_id=str(row[b_i]),
                    factor=float(row[v_i]),
                )
            )
    violations.sort(key=lambda v: (-v.factor, v.timestamp))
    return violations


def summarize_findings(findings):
    """Human-readable error report lines for a list of outlier findings."""
    lines = []
    for f in findings:
        context = ", ".join(
            "{}={}".format(k, v)
            for k, v in f.state_at.items()
            if k != "t" and v is not None
        )
        lines.append(
            "t={:.3f}s {} on {}: outlier v={} | state: {}".format(
                f.timestamp, f.signal_id, f.channel_id, f.value, context
            )
        )
    return lines
