"""Anomaly / hot-spot detection over state representations (Sec. 4.4).

"Using Anomaly Detection, hot-spots can be detected in large databases.
Detected anomalies can be ranked in terms of severity and presented to
the developer or can automatically be transformed into extensions w to
detect similar anomalies in further runs."

The detector scores each state row by the rarity of its column values
(product of per-column empirical frequencies); rows whose score falls
below a quantile threshold are anomalies, ranked by severity. Anomalies
convert into :class:`~repro.core.extension.DerivedValueExtension` rules
matching the anomalous value in future runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.extension import DerivedValueExtension


class AnomalyError(ValueError):
    """Raised for invalid detector parameters."""


@dataclass(frozen=True)
class Anomaly:
    """One detected hot-spot."""

    timestamp: float
    score: float  # lower = rarer = more severe
    state: dict
    rare_items: tuple  # ((column, value, frequency), ...) sorted rarest first

    @property
    def severity(self):
        """Severity rank value: -log score (higher = more severe)."""
        return -math.log(max(self.score, 1e-300))


@dataclass(frozen=True)
class StateAnomalyDetector:
    """Frequency-based hot-spot detector.

    Parameters
    ----------
    quantile:
        Fraction of lowest-scoring rows reported (e.g. 0.01 = rarest 1%).
    min_rows:
        Minimum rows required before detection is meaningful.
    """

    quantile: float = 0.02
    min_rows: int = 20

    def __post_init__(self):
        if not 0 < self.quantile < 1:
            raise AnomalyError("quantile must be in (0, 1)")
        if self.min_rows < 1:
            raise AnomalyError("min_rows must be >= 1")

    def detect(self, representation, columns=None):
        """Ranked anomalies (most severe first) of a state representation."""
        states = list(representation.iter_states())
        if len(states) < self.min_rows:
            return []
        if columns is None:
            columns = [c for c in states[0] if c != "t"]
        frequencies = self._column_frequencies(states, columns)
        scored = []
        for state in states:
            score = 1.0
            rare = []
            for column in columns:
                value = str(state.get(column))
                freq = frequencies[column].get(value, 0.0)
                score *= max(freq, 1e-12)
                rare.append((column, value, freq))
            rare.sort(key=lambda item: item[2])
            scored.append(
                Anomaly(
                    timestamp=state["t"],
                    score=score,
                    state=state,
                    rare_items=tuple(rare[:3]),
                )
            )
        scored.sort(key=lambda a: a.score)
        cutoff = max(1, int(len(scored) * self.quantile))
        threshold_score = scored[cutoff - 1].score
        return [a for a in scored if a.score <= threshold_score]

    @staticmethod
    def _column_frequencies(states, columns):
        frequencies = {}
        n = len(states)
        for column in columns:
            counts = {}
            for state in states:
                value = str(state.get(column))
                counts[value] = counts.get(value, 0) + 1
            frequencies[column] = {v: c / n for v, c in counts.items()}
        return frequencies

    def to_extension_rules(self, anomalies, signal_column):
        """Turn anomalies into extension rules flagging recurrences.

        For each anomaly whose rarest item concerns *signal_column*, an
        extension is produced that emits a marker whenever the same value
        reappears -- the automated feedback loop the paper describes.
        """
        rules = []
        seen = set()
        for anomaly in anomalies:
            for column, value, _freq in anomaly.rare_items:
                if column != signal_column or value in seen:
                    continue
                seen.add(value)
                rules.append(
                    DerivedValueExtension(
                        signal_id=signal_column,
                        name="{}AnomalyRecurrence".format(signal_column),
                        func=_MatchValue(value),
                    )
                )
        return rules


@dataclass(frozen=True)
class _MatchValue:
    """Picklable predicate emitting 1 when a value recurs."""

    value: str

    def __call__(self, t, v):
        return 1 if str(v) == self.value else None
