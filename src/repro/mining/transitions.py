"""Transition graphs over state representations (Sec. 4.4).

"Transition graphs can be generated that allow for visual inspection of
error causes and event chains prior to errors ... by linking all rows of
the state representation to its consequent row and aggregating the
number of times a transition occurred. With this, rare transitions
indicate potential errors and error causes are isolated through path
analysis."

Built on :mod:`networkx` for the path analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx


def state_key(state, columns):
    """Canonical hashable node key for a state row (subset of columns)."""
    return tuple((c, str(state.get(c))) for c in columns)


@dataclass
class TransitionGraph:
    """Aggregated directed graph of full-state (or column) transitions."""

    columns: tuple
    graph: nx.DiGraph = field(default_factory=nx.DiGraph)
    total_transitions: int = 0

    @classmethod
    def from_states(cls, states, columns=None):
        """Build from an iterable of state dicts (time-ordered)."""
        states = list(states)
        if columns is None:
            columns = tuple(
                c for c in (states[0].keys() if states else ()) if c != "t"
            )
        else:
            columns = tuple(columns)
        tg = cls(columns=columns)
        previous = None
        for state in states:
            node = state_key(state, columns)
            if not tg.graph.has_node(node):
                tg.graph.add_node(node, visits=0)
            tg.graph.nodes[node]["visits"] += 1
            if previous is not None and previous != node:
                if tg.graph.has_edge(previous, node):
                    tg.graph[previous][node]["count"] += 1
                else:
                    tg.graph.add_edge(previous, node, count=1)
                tg.total_transitions += 1
            previous = node
        return tg

    @classmethod
    def from_representation(cls, representation, columns=None):
        return cls.from_states(representation.iter_states(), columns)

    # -- queries ------------------------------------------------------------
    def transition_count(self, src, dst):
        if self.graph.has_edge(src, dst):
            return self.graph[src][dst]["count"]
        return 0

    def rare_transitions(self, max_count=1):
        """Edges occurring at most *max_count* times -- potential errors."""
        return sorted(
            (
                (u, v, d["count"])
                for u, v, d in self.graph.edges(data=True)
                if d["count"] <= max_count
            ),
            key=lambda e: (e[2], str(e[0])),
        )

    def transition_probability(self, src, dst):
        """count(src -> dst) / total outgoing count of src."""
        out_total = sum(
            d["count"] for _u, _v, d in self.graph.out_edges(src, data=True)
        )
        if out_total == 0:
            return 0.0
        return self.transition_count(src, dst) / out_total

    def nodes_matching(self, column, value):
        """All state nodes where *column* has *value*."""
        target = (column, str(value))
        return [n for n in self.graph.nodes if target in n]

    def paths_to(self, column, value, max_length=5):
        """Event chains ending in states where column==value.

        Returns simple paths (up to *max_length* edges) from any start
        node into matching states -- the paper's "path analysis" to
        isolate error causes.
        """
        targets = set(self.nodes_matching(column, value))
        paths = []
        for target in targets:
            for source in self.graph.nodes:
                if source in targets:
                    continue
                for path in nx.all_simple_paths(
                    self.graph, source, target, cutoff=max_length
                ):
                    paths.append(path)
        # Prefer short, frequent chains.
        def path_weight(path):
            return sum(
                self.graph[a][b]["count"] for a, b in zip(path, path[1:])
            )

        paths.sort(key=lambda p: (len(p), -path_weight(p)))
        return paths

    def predecessors_of(self, column, value):
        """Direct predecessor states of error states, with counts."""
        out = []
        for node in self.nodes_matching(column, value):
            for pred in self.graph.predecessors(node):
                out.append((pred, node, self.graph[pred][node]["count"]))
        out.sort(key=lambda e: -e[2])
        return out

    def to_dot(self):
        """Graphviz DOT text for visual inspection."""
        lines = ["digraph transitions {"]
        names = {n: "s{}".format(i) for i, n in enumerate(self.graph.nodes)}
        for node, name in names.items():
            label = "\\n".join("{}={}".format(c, v) for c, v in node)
            lines.append(
                '  {} [label="{}", visits={}];'.format(
                    name, label, self.graph.nodes[node]["visits"]
                )
            )
        for u, v, d in self.graph.edges(data=True):
            lines.append(
                '  {} -> {} [label="{}"];'.format(names[u], names[v], d["count"])
            )
        lines.append("}")
        return "\n".join(lines)
