"""Command-line interface.

The off-board analysis workflow of Fig. 1 as a tool: simulate journeys,
inspect raw traces, extract domain signals into a table store and run the
full preprocessing pipeline from a declarative parameter file.

Subcommands
-----------
``simulate``  record a journey of one of the SYN/LIG/STA vehicles
``stats``     row/channel/message statistics of a raw trace file
``export-dbc`` write a data set's communication database as DBC files
``extract``   lines 3-6: signal extraction into a table store
``pipeline``  full Algorithm 1 run; prints summary + state representation
``degrade``   corruption severity sweep: perfect vs corrupted pipeline runs
``fleet``     checkpointed multi-trace sweeps: prepare / run / resume / status
``stream``    always-on windowed ingest: serve / status (kill-resumable)
``discover``  DBC-less signal discovery: raw trace in, recovered DBC +
              ``repro.discovery/1`` report out
``dbc``       database tooling: ``diff`` two DBC files structurally

Operational errors (a missing or corrupt catalog, an unreadable trace
file) exit with status 2 and a single structured ``error: <kind>: ...``
line on stderr -- never a traceback.

Examples
--------
::

    python -m repro.cli simulate --dataset SYN --duration 20 --out j0.trc
    python -m repro.cli stats --trace j0.trc
    python -m repro.cli extract --dataset SYN --trace j0.trc \
        --signals syn_num_000,syn_num_001 --store ./store
    python -m repro.cli pipeline --dataset SYN --trace j0.trc \
        --params params.json --max-rows 15
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.params import config_from_dict, load_config
from repro.core.pipeline import PipelineConfig, PreprocessingPipeline
from repro.datasets import SPECS, build_dataset
from repro.engine import EngineContext, TableStore
from repro.network.dbcio import dump_database
from repro.obs import stopwatch
from repro.tracefile import asciilog, binlog


class CliError(Exception):
    """An operational error to report as one structured line, exit 2.

    ``kind`` names the failing subsystem (``trace``, ``catalog``,
    ``fleet``, ``params``) so scripts can dispatch on the prefix without
    parsing prose.
    """

    def __init__(self, kind, message):
        super().__init__(message)
        self.kind = kind


def _trace_module(path):
    """Pick the trace codec from the file suffix (.trc text, .btrc bin)."""
    return binlog if str(path).endswith(".btrc") else asciilog


def _load_trace(ctx, path):
    from repro.tracefile import BinaryTraceError, TraceFormatError

    try:
        return _trace_module(path).load_table(ctx, path)
    except FileNotFoundError:
        raise CliError("trace", "trace file {!r} does not exist".format(
            str(path)))
    except IsADirectoryError:
        raise CliError("trace", "{!r} is a directory, not a trace "
                       "file".format(str(path)))
    except (TraceFormatError, BinaryTraceError) as exc:
        raise CliError("trace", "trace file {!r} is corrupt: {}".format(
            str(path), exc))


def _bundle(args):
    spec = SPECS[args.dataset]
    return build_dataset(spec, seed_offset=getattr(args, "journey", 0))


def _context(args):
    workers = getattr(args, "workers", None) or 1
    if workers <= 1:
        return EngineContext.serial()
    return EngineContext.simulated_cluster(num_workers=workers)


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def cmd_simulate(args, out=sys.stdout):
    bundle = _bundle(args)
    records = bundle.byte_records(args.duration)
    count = _trace_module(args.out).dump_records(records, args.out)
    print(
        "wrote {} records ({} s of {} journey {}) to {}".format(
            count, args.duration, args.dataset, args.journey, args.out
        ),
        file=out,
    )
    return 0


def cmd_stats(args, out=sys.stdout):
    records = _trace_module(args.trace).load_records(args.trace)
    if not records:
        print("empty trace", file=out)
        return 0
    channels = {}
    messages = {}
    for t, payload, b_id, m_id, _mi in records:
        channels[b_id] = channels.get(b_id, 0) + 1
        messages[(b_id, m_id)] = messages.get((b_id, m_id), 0) + 1
    duration = records[-1][0] - records[0][0]
    print("rows           : {}".format(len(records)), file=out)
    print("duration       : {:.3f} s".format(duration), file=out)
    print("message types  : {}".format(len(messages)), file=out)
    for b_id in sorted(channels):
        print(
            "channel {:8s}: {} rows, {} message types".format(
                str(b_id),
                channels[b_id],
                sum(1 for key in messages if key[0] == b_id),
            ),
            file=out,
        )
    return 0


def cmd_export_dbc(args, out=sys.stdout):
    bundle = _bundle(args)
    database = bundle.database
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for channel in database.channels():
        safe = str(channel).replace("/", "_")
        path = out_dir / "{}_{}.dbc".format(args.dataset.lower(), safe)
        dump_database(database, path, channels=[channel])
        print("wrote {}".format(path), file=out)
    return 0


def cmd_extract(args, out=sys.stdout):
    bundle = _bundle(args)
    ctx = _context(args)
    k_b = _load_trace(ctx, args.trace)
    signals = [s for s in args.signals.split(",") if s]
    catalog = bundle.database.translation_catalog(signals)
    pipeline = PreprocessingPipeline(PipelineConfig(catalog=catalog))
    store = TableStore(args.store)
    with stopwatch() as watch:
        k_s = pipeline.extract_signals(k_b, cache=False)
        manifest = store.write(args.table, k_s)
    print(
        "extracted {} signal instances of {} signals into {}/{} "
        "in {:.2f} s".format(
            manifest["num_rows"], len(signals), args.store, args.table,
            watch.seconds,
        ),
        file=out,
    )
    return 0


def cmd_pipeline(args, out=sys.stdout):
    bundle = _bundle(args)
    ctx = _context(args)
    k_b = _load_trace(ctx, args.trace)
    if args.params:
        try:
            config = load_config(args.params, bundle.database)
        except FileNotFoundError:
            raise CliError("params", "parameter file {!r} does not "
                           "exist".format(str(args.params)))
        except ValueError as exc:
            raise CliError("params", "parameter file {!r} is invalid: "
                           "{}".format(str(args.params), exc))
    else:
        document = {
            "signals": list(bundle.signal_ids),
            "constraints": [
                {
                    "signal": s,
                    "type": "unchanged_within_cycle",
                    "cycle_time": bundle.cycle_times[s],
                }
                for s in bundle.signal_ids
            ],
        }
        config = config_from_dict(document, bundle.database)
    result = PreprocessingPipeline(config).run(k_b)
    print("counts : {}".format(result.counts), file=out)
    print(
        "timings: {}".format(
            {k: round(v, 3) for k, v in result.timings.items()}
        ),
        file=out,
    )
    print("classification:", file=out)
    for s_id, (dtype, branch) in sorted(
        result.classification_summary().items()
    ):
        print("  {:20s} {} ({})".format(s_id, dtype, branch), file=out)
    representation = result.state_representation()
    print(representation.to_markdown(max_rows=args.max_rows), file=out)
    if args.output:
        Path(args.output).write_text(representation.to_markdown())
        print("state representation written to {}".format(args.output), file=out)
    if args.report:
        result.report.set_meta(
            dataset=args.dataset, trace=str(args.trace),
            workers=getattr(args, "workers", 1),
        )
        result.report.write(args.report)
        print("run report written to {}".format(args.report), file=out)
    return 0


def cmd_profile(args, out=sys.stdout):
    """Per-signal profile of a trace (rates, gaps, expected branches)."""
    from repro.core.interpretation import interpret
    from repro.core.preselection import preselect
    from repro.core.profiling import profile_report, profile_trace

    bundle = _bundle(args)
    ctx = _context(args)
    k_b = _load_trace(ctx, args.trace)
    catalog = bundle.database.translation_catalog()
    k_s = interpret(preselect(k_b, catalog), catalog)
    profiles = profile_trace(k_s)
    print(profile_report(profiles, sort_by=args.sort), file=out)
    return 0


def cmd_report(args, out=sys.stdout):
    """Full pipeline run + markdown verification report."""
    from repro.mining.report import ReportOptions, generate_report

    bundle = _bundle(args)
    ctx = _context(args)
    k_b = _load_trace(ctx, args.trace)
    if args.params:
        config = load_config(args.params, bundle.database)
    else:
        document = {
            "signals": list(bundle.signal_ids),
            "constraints": [
                {
                    "signal": s,
                    "type": "unchanged_within_cycle",
                    "cycle_time": bundle.cycle_times[s],
                }
                for s in bundle.signal_ids
            ],
        }
        config = config_from_dict(document, bundle.database)
    result = PreprocessingPipeline(config).run(k_b)
    report = generate_report(
        result,
        title="Verification report: {} ({})".format(args.trace, args.dataset),
        options=ReportOptions(state_rows=args.state_rows),
    )
    text = report.to_markdown()
    if args.out:
        Path(args.out).write_text(text)
        print("report written to {}".format(args.out), file=out)
    else:
        print(text, file=out)
    return 0


def _load_records(path):
    from repro.tracefile import BinaryTraceError, TraceFormatError

    try:
        return _trace_module(path).load_records(path)
    except FileNotFoundError:
        raise CliError("trace", "trace file {!r} does not exist".format(
            str(path)))
    except IsADirectoryError:
        raise CliError("trace", "{!r} is a directory, not a trace "
                       "file".format(str(path)))
    except (TraceFormatError, BinaryTraceError) as exc:
        raise CliError("trace", "trace file {!r} is corrupt: {}".format(
            str(path), exc))


def cmd_degrade(args, out=sys.stdout):
    """Severity sweep: perfect vs corrupted runs of the same trace."""
    from repro.testing.degradation import (
        KNOBS,
        degradation_summary,
        run_degradation,
    )

    bundle = _bundle(args)
    records = _load_records(args.trace)
    if args.params:
        try:
            config = load_config(args.params, bundle.database)
        except FileNotFoundError:
            raise CliError("params", "parameter file {!r} does not "
                           "exist".format(str(args.params)))
        except ValueError as exc:
            raise CliError("params", "parameter file {!r} is invalid: "
                           "{}".format(str(args.params), exc))
    else:
        document = {
            "signals": list(bundle.signal_ids),
            "constraints": [
                {
                    "signal": s,
                    "type": "unchanged_within_cycle",
                    "cycle_time": bundle.cycle_times[s],
                }
                for s in bundle.signal_ids
            ],
        }
        config = config_from_dict(document, bundle.database)
    try:
        severities = tuple(
            float(s) for s in args.severities.split(",") if s
        )
    except ValueError:
        raise CliError("degrade", "severities must be a comma-separated "
                       "list of numbers, got {!r}".format(args.severities))
    knobs = dict(KNOBS)
    if args.knobs:
        wanted = [k for k in args.knobs.split(",") if k]
        unknown = sorted(set(wanted) - set(KNOBS))
        if unknown:
            raise CliError("degrade", "unknown knobs {}; available: "
                           "{}".format(unknown, sorted(KNOBS)))
        knobs = {k: KNOBS[k] for k in wanted}
    try:
        report = run_degradation(
            records, config, knobs=knobs, severities=severities,
            seed=args.seed,
        )
    except ValueError as exc:
        raise CliError("degrade", str(exc))
    report.set_meta(dataset=args.dataset, trace=str(args.trace))
    print(degradation_summary(report), file=out)
    print(
        "baseline: {records} records -> {k_s_rows} K_s rows -> "
        "{r_out_rows} R_out rows (reduction {reduction_ratio:.3f})".format(
            **report.baseline
        ),
        file=out,
    )
    if args.out_report:
        report.write(args.out_report)
        print(
            "degradation report written to {}".format(args.out_report),
            file=out,
        )
    return 0


def cmd_show_params(args, out=sys.stdout):
    """Print a starter parameter document for a data set."""
    bundle = _bundle(args)
    document = {
        "signals": list(bundle.signal_ids),
        "constraints": [
            {
                "signal": s,
                "type": "unchanged_within_cycle",
                "cycle_time": bundle.cycle_times[s],
                "tolerance": 1.5,
            }
            for s in bundle.signal_ids
        ],
        "extensions": [],
        "branch": {"sax_alphabet": 3},
        "dedup_channels": True,
    }
    json.dump(document, out, indent=2)
    out.write("\n")
    return 0


# ---------------------------------------------------------------------------
# Fleet subcommands
# ---------------------------------------------------------------------------


def _fleet_guard(fn, *fn_args, **fn_kwargs):
    """Run a fleet entry point, mapping its errors to structured lines."""
    from repro.fleet import CatalogError, FleetRunError

    try:
        return fn(*fn_args, **fn_kwargs)
    except CatalogError as exc:
        raise CliError("catalog", str(exc))
    except FleetRunError as exc:
        raise CliError("fleet", str(exc))


def _print_fleet_result(result, out):
    counts = {
        status: sum(1 for s in result.statuses.values() if s == status)
        for status in ("done", "cached", "failed", "skipped")
    }
    print(
        "jobs   : {} total, {} executed, {} cached, {} failed, "
        "{} skipped".format(
            len(result.catalog), counts["done"], counts["cached"],
            counts["failed"], counts["skipped"],
        ),
        file=out,
    )
    print(
        "rows   : {} trace rows -> {} reduced rows".format(
            result.summary.get("trace_rows", 0),
            result.summary.get("rows_out", 0),
        ),
        file=out,
    )
    for job_id, row in sorted(result.failed.items()):
        print(
            "failed : {} trace={} stage={} attempts={}: {}".format(
                job_id, row.get("trace"), row.get("stage"),
                row.get("attempts"), row.get("error"),
            ),
            file=out,
        )


def cmd_fleet_prepare(args, out=sys.stdout):
    from repro import fleet

    params = None
    if args.params:
        try:
            params = json.loads(Path(args.params).read_text())
        except FileNotFoundError:
            raise CliError("params", "parameter file {!r} does not "
                           "exist".format(str(args.params)))
        except ValueError as exc:
            raise CliError("params", "parameter file {!r} is invalid: "
                           "{}".format(str(args.params), exc))
    catalog = _fleet_guard(
        fleet.prepare_run, args.run_dir, args.dataset, args.traces,
        duration=args.duration, params=params, trace_format=args.format,
    )
    print(
        "catalogued {} jobs ({} traces of {:.1f} s) under {}".format(
            len(catalog), args.traces, args.duration, args.run_dir
        ),
        file=out,
    )
    return 0


def cmd_fleet_run(args, out=sys.stdout):
    from repro import fleet

    result = _fleet_guard(
        fleet.run, args.run_dir, workers=args.workers,
        max_inflight=args.max_inflight, max_retries=args.retries,
    )
    _print_fleet_result(result, out)
    print("report : {}".format(Path(args.run_dir) / fleet.REPORT_FILE),
          file=out)
    return 1 if result.failed else 0


def cmd_fleet_resume(args, out=sys.stdout):
    from repro import fleet

    result = _fleet_guard(
        fleet.resume, args.run_dir, workers=args.workers,
        max_inflight=args.max_inflight, max_retries=args.retries,
    )
    print("resumed: {} re-executed, {} reused from checkpoints".format(
        len(result.executed), len(result.cached)), file=out)
    _print_fleet_result(result, out)
    return 1 if result.failed else 0


def cmd_fleet_status(args, out=sys.stdout):
    from repro import fleet

    info = _fleet_guard(fleet.status, args.run_dir)
    print(
        "{}: {} jobs, {} completed, {} failed, {} pending, "
        "aggregated={}".format(
            info["run_dir"], info["jobs"], info["completed"],
            info["failed"], info["pending"],
            "yes" if info["aggregated"] else "no",
        ),
        file=out,
    )
    for row in info["failures"]:
        print(
            "failed : {} trace={} stage={}: {}".format(
                row.get("job_id"), row.get("trace"), row.get("stage"),
                row.get("error"),
            ),
            file=out,
        )
    return 0


# ---------------------------------------------------------------------------
# Stream subcommands
# ---------------------------------------------------------------------------


def _stream_pipeline_config(args, bundle):
    """The per-vehicle pipeline parameterization (same rules as
    ``pipeline``: a params file when given, else per-signal
    unchanged-within-cycle constraints)."""
    if args.params:
        try:
            return load_config(args.params, bundle.database)
        except FileNotFoundError:
            raise CliError("params", "parameter file {!r} does not "
                           "exist".format(str(args.params)))
        except ValueError as exc:
            raise CliError("params", "parameter file {!r} is invalid: "
                           "{}".format(str(args.params), exc))
    document = {
        "signals": list(bundle.signal_ids),
        "constraints": [
            {
                "signal": s,
                "type": "unchanged_within_cycle",
                "cycle_time": bundle.cycle_times[s],
            }
            for s in bundle.signal_ids
        ],
    }
    return config_from_dict(document, bundle.database)


def cmd_stream_serve(args, out=sys.stdout):
    import asyncio

    from repro.obs import MetricsRegistry
    from repro.stream import (
        ReplaySource,
        StreamConfig,
        StreamError,
        StreamIngestService,
    )

    bundle = _bundle(args)
    ctx = _context(args)
    config = _stream_pipeline_config(args, bundle)
    try:
        stream_config = StreamConfig(
            window_seconds=args.window,
            grace_seconds=args.grace,
            queue_capacity=args.queue_capacity,
            checkpoint_every=args.checkpoint_every,
        )
    except StreamError as exc:
        raise CliError("stream", str(exc))
    metrics = MetricsRegistry()
    service = StreamIngestService(
        args.run_dir, stream_config, metrics=metrics
    )
    vehicles = {}
    try:
        for trace in args.traces:
            vehicle_id = Path(trace).stem
            records = _load_records(trace)
            service.add_vehicle(
                vehicle_id, ReplaySource(records), config, ctx
            )
            vehicles[vehicle_id] = str(trace)
        service.checkpointer.write_manifest({
            "dataset": args.dataset,
            "window_seconds": args.window,
            "grace_seconds": args.grace,
            "vehicles": vehicles,
            "params": str(args.params) if args.params else None,
        })
        result = asyncio.run(service.serve(max_frames=args.max_frames))
    except StreamError as exc:
        raise CliError("stream", str(exc))
    counters = metrics.counters()
    resumed = counters.get("stream.resume.sessions", 0)
    if resumed:
        print(
            "resumed: {} sessions from checkpoints, {} frames already "
            "covered".format(
                resumed, counters.get("stream.resume.frames_skipped", 0)
            ),
            file=out,
        )
    for vehicle_id, summary in sorted(result.sessions.items()):
        print(
            "session {}: {} frames, {} windows sealed, {} late drops, "
            "drained={}".format(
                vehicle_id, summary["frames_ingested"],
                summary["windows_sealed"], summary["late_dropped"],
                "yes" if summary["drained"] else "no",
            ),
            file=out,
        )
    print(
        "stream : {} frames delivered, {} checkpoints committed".format(
            result.frames_delivered, counters.get("stream.checkpoints", 0)
        ),
        file=out,
    )
    if result.killed:
        print(
            "killed : frame budget spent mid-stream; re-run serve on {} "
            "to resume".format(args.run_dir),
            file=out,
        )
        return 1
    if args.finalize:
        try:
            results = service.finalize_all()
        except StreamError as exc:
            raise CliError("stream", str(exc))
        for vehicle_id, final in sorted(results.items()):
            print(
                "final  : {} -> {} reduced rows".format(
                    vehicle_id, final.r_out.count()
                ),
                file=out,
            )
    return 0


def cmd_stream_status(args, out=sys.stdout):
    import time

    from repro.stream import StreamCheckpointer, StreamError

    checkpointer = StreamCheckpointer(args.run_dir)
    try:
        manifest = checkpointer.read_manifest()
    except StreamError as exc:
        raise CliError("stream", str(exc))
    print(
        "{}: stream run of dataset {}, window {} s (+{} s grace)".format(
            args.run_dir, manifest.get("dataset"),
            manifest.get("window_seconds"), manifest.get("grace_seconds"),
        ),
        file=out,
    )
    session_ids = checkpointer.session_ids()
    if not session_ids:
        print("no session checkpoints committed yet", file=out)
        return 0
    now = time.time()
    for vehicle_id in session_ids:
        try:
            payload = checkpointer.session_payload(vehicle_id)
        except StreamError as exc:
            raise CliError("stream", str(exc))
        mtime = checkpointer.checkpoint_mtime(vehicle_id)
        age = " checkpoint age {:.1f} s".format(now - mtime) \
            if mtime is not None else ""
        print(
            "session {}: {} frames, {} windows sealed, drained={},{}".format(
                vehicle_id, payload.get("frames_ingested"),
                payload.get("windows_sealed"),
                "yes" if payload.get("drained") else "no", age,
            ),
            file=out,
        )
    return 0


# ---------------------------------------------------------------------------
# Discovery subcommands
# ---------------------------------------------------------------------------


def _load_dbc(path):
    """DBC file -> NetworkDatabase, with structured error lines."""
    from repro.network.dbcio import DbcError, load_database

    try:
        return load_database(path)
    except FileNotFoundError:
        raise CliError("dbc", "database file {!r} does not exist".format(
            str(path)))
    except IsADirectoryError:
        raise CliError("dbc", "{!r} is a directory, not a database "
                       "file".format(str(path)))
    except (DbcError, ValueError) as exc:
        raise CliError("dbc", "database file {!r} is invalid: {}".format(
            str(path), exc))


def _load_partial(paths):
    """Combine --partial-dbc files into one documented database."""
    from repro.network.database import DatabaseError, NetworkDatabase

    if not paths:
        return None
    messages = []
    for path in paths:
        messages.extend(_load_dbc(path).messages)
    try:
        return NetworkDatabase(tuple(messages))
    except DatabaseError as exc:
        raise CliError(
            "dbc", "conflicting partial databases: {}".format(exc)
        )


def cmd_discover(args, out=sys.stdout):
    from repro.discovery import (
        DiscoveryConfig,
        DiscoveryError,
        discover,
        pipeline_coverage,
        score_discovery,
        unscored_report,
    )

    records = _load_records(args.trace)
    partial = _load_partial(args.partial_dbc)
    try:
        config = DiscoveryConfig(min_frames=args.min_frames)
    except DiscoveryError as exc:
        raise CliError("params", str(exc))
    if not records:
        raise CliError(
            "trace", "trace file {!r} is empty; nothing to "
            "discover".format(str(args.trace))
        )
    result = discover(records=records, partial=partial, config=config)
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for channel in result.database.channels():
        safe = str(channel).replace("/", "_")
        path = out_dir / "recovered_{}.dbc".format(safe)
        dump_database(result.database, path, channels=[channel])
        print("wrote {}".format(path), file=out)
    classes = {
        name.rsplit(".", 1)[1]: value
        for name, value in result.metrics.counters().items()
        if name.startswith("discovery.tokens.")
    }
    print(
        "discovered {} signals in {} messages ({} translation "
        "tuples){}".format(
            sum(len(d.signals) for d in result.messages.values()),
            len(result.messages),
            len(result.catalog),
            " [{}]".format(
                ", ".join(
                    "{} {}".format(value, name)
                    for name, value in sorted(classes.items())
                )
            ) if classes else "",
        ),
        file=out,
    )
    if partial is not None:
        print(
            "merged partial database: {} documented signals kept, {} "
            "recovered added, {} overlapping tokens dropped".format(
                result.merge_stats["documented_signals"],
                result.merge_stats["recovered_signals"],
                result.merge_stats["overlap_dropped"],
            ),
            file=out,
        )
    report = None
    if args.dataset:
        bundle = _bundle(args)
        report = score_discovery(bundle.database, result)
        totals = report.totals
        print(
            "vs {} ground truth: precision {:.3f}, recall {:.3f}, "
            "F1 {:.3f}, encoding accuracy {:.3f}".format(
                args.dataset, totals["precision"], totals["recall"],
                totals["f1"], totals["encoding_accuracy"],
            ),
            file=out,
        )
        if args.coverage:
            coverage, _detail = pipeline_coverage(
                bundle.database, result, records
            )
            print(
                "pipeline coverage: {:.3f} of discoverable signals "
                "interpreted end to end".format(coverage),
                file=out,
            )
    if args.report:
        if report is None:
            report = unscored_report(result)
        report.set_meta(
            trace=str(args.trace),
            partial_databases=[str(p) for p in args.partial_dbc],
        )
        report.write(args.report)
        print("wrote {}".format(args.report), file=out)
    return 0


def cmd_dbc_diff(args, out=sys.stdout):
    from repro.network.dbcio import diff_databases

    actual = _load_dbc(args.actual)
    recovered = _load_dbc(args.recovered)
    diff = diff_databases(actual, recovered)
    for line in diff.describe():
        print(line, file=out)
    counts = diff.counts()
    print(
        "diff: {}".format(
            ", ".join(
                "{} {}".format(value, name)
                for name, value in sorted(counts.items())
            )
        ),
        file=out,
    )
    if diff.is_empty():
        print("databases are structurally identical", file=out)
        return 0
    return 1


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="In-vehicle network trace preprocessing (DAC'18 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_dataset(p):
        p.add_argument(
            "--dataset", choices=sorted(SPECS), required=True,
            help="which synthetic vehicle (Table 5 data set)",
        )
        p.add_argument(
            "--journey", type=int, default=0,
            help="journey index (varies behaviour seeds)",
        )

    p = sub.add_parser("simulate", help="record a journey to a trace file")
    add_dataset(p)
    p.add_argument("--duration", type=float, default=30.0)
    p.add_argument("--out", required=True,
                   help="output file (.trc = text, .btrc = binary)")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("stats", help="summarize a raw trace file")
    p.add_argument("--trace", required=True)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("export-dbc", help="write per-channel DBC files")
    add_dataset(p)
    p.add_argument("--out-dir", required=True)
    p.set_defaults(func=cmd_export_dbc)

    p = sub.add_parser("extract", help="extract signals into a table store")
    add_dataset(p)
    p.add_argument("--trace", required=True)
    p.add_argument("--signals", required=True,
                   help="comma-separated signal ids")
    p.add_argument("--store", required=True)
    p.add_argument("--table", default="extraction")
    p.add_argument("--workers", type=int, default=1)
    p.set_defaults(func=cmd_extract)

    p = sub.add_parser("pipeline", help="run the full Algorithm 1")
    add_dataset(p)
    p.add_argument("--trace", required=True)
    p.add_argument("--params", help="JSON parameter file (see core.params)")
    p.add_argument("--max-rows", type=int, default=10)
    p.add_argument("--output", help="write the full state table here")
    p.add_argument("--report",
                   help="write the run's observability report (JSON) here")
    p.add_argument("--workers", type=int, default=1)
    p.set_defaults(func=cmd_pipeline)

    p = sub.add_parser("profile", help="per-signal trace profile")
    add_dataset(p)
    p.add_argument("--trace", required=True)
    p.add_argument("--sort", choices=["count", "rate", "signal"],
                   default="rate")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("report", help="markdown verification report")
    add_dataset(p)
    p.add_argument("--trace", required=True)
    p.add_argument("--params", help="JSON parameter file")
    p.add_argument("--out", help="write the report here (default: stdout)")
    p.add_argument("--state-rows", type=int, default=0)
    p.add_argument("--workers", type=int, default=1)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "degrade",
        help="corruption severity sweep: perfect vs corrupted pipeline runs",
    )
    add_dataset(p)
    p.add_argument("--trace", required=True)
    p.add_argument("--params", help="JSON parameter file (see core.params)")
    p.add_argument("--severities", default="0,0.5,1",
                   help="comma-separated severity factors (default 0,0.5,1)")
    p.add_argument("--knobs",
                   help="comma-separated corruption knob subset "
                        "(default: all)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out-report",
                   help="write the repro.degrade/1 report (JSON) here")
    p.set_defaults(func=cmd_degrade)

    p = sub.add_parser("show-params", help="print a starter parameter file")
    add_dataset(p)
    p.set_defaults(func=cmd_show_params)

    p = sub.add_parser("fleet", help="checkpointed multi-trace sweeps")
    fleet_sub = p.add_subparsers(dest="fleet_command", required=True)

    def add_run_args(fp):
        fp.add_argument("--run-dir", required=True,
                        help="sweep directory (catalog + checkpoints)")
        fp.add_argument("--workers", type=int, default=1)
        fp.add_argument("--max-inflight", type=int, default=4)
        fp.add_argument("--retries", type=int, default=2)

    fp = fleet_sub.add_parser(
        "prepare", help="simulate journeys and write the job catalog")
    fp.add_argument("--run-dir", required=True)
    fp.add_argument("--dataset", choices=sorted(SPECS), required=True)
    fp.add_argument("--traces", type=int, default=4,
                    help="number of journeys to simulate")
    fp.add_argument("--duration", type=float, default=6.0)
    fp.add_argument("--params", help="JSON parameter file (see core.params)")
    fp.add_argument("--format", choices=["trc", "btrc"], default="trc")
    fp.set_defaults(func=cmd_fleet_prepare)

    fp = fleet_sub.add_parser("run", help="execute the catalogued sweep")
    add_run_args(fp)
    fp.set_defaults(func=cmd_fleet_run)

    fp = fleet_sub.add_parser(
        "resume", help="continue a killed sweep from its checkpoints")
    add_run_args(fp)
    fp.set_defaults(func=cmd_fleet_resume)

    fp = fleet_sub.add_parser(
        "status", help="inspect a sweep without running anything")
    fp.add_argument("--run-dir", required=True)
    fp.set_defaults(func=cmd_fleet_status)

    p = sub.add_parser(
        "stream", help="always-on windowed ingest (kill-resumable)")
    stream_sub = p.add_subparsers(dest="stream_command", required=True)

    sp = stream_sub.add_parser(
        "serve",
        help="stream recorded traces through per-vehicle sessions")
    add_dataset(sp)
    sp.add_argument("--run-dir", required=True,
                    help="checkpoint directory (resumed when re-run)")
    sp.add_argument("--traces", nargs="+", required=True,
                    help="trace files; each becomes one vehicle session")
    sp.add_argument("--params", help="JSON parameter file (see core.params)")
    sp.add_argument("--window", type=float, default=1.0,
                    help="window length in seconds")
    sp.add_argument("--grace", type=float, default=0.5,
                    help="late-arrival grace before a window seals")
    sp.add_argument("--queue-capacity", type=int, default=64,
                    help="per-session queue bound (backpressure)")
    sp.add_argument("--checkpoint-every", type=int, default=200,
                    help="checkpoint cadence in frames per session")
    sp.add_argument("--max-frames", type=int,
                    help="stop after this many delivered frames "
                         "(emulates a mid-stream kill)")
    sp.add_argument("--finalize", action="store_true",
                    help="finalize drained sessions and print row counts")
    sp.set_defaults(func=cmd_stream_serve)

    sp = stream_sub.add_parser(
        "status", help="inspect committed session checkpoints")
    sp.add_argument("--run-dir", required=True)
    sp.set_defaults(func=cmd_stream_status)

    p = sub.add_parser(
        "discover",
        help="recover signal boundaries and a DBC from a raw trace "
             "(no database needed)",
    )
    p.add_argument("--trace", required=True,
                   help="raw trace file (.trc text, .btrc binary)")
    p.add_argument("--out-dir", required=True,
                   help="directory for per-channel recovered DBC files")
    p.add_argument("--partial-dbc", action="append", default=[],
                   help="documented partial DBC to merge (documented "
                        "signals win; repeatable)")
    p.add_argument("--report",
                   help="write the repro.discovery/1 report (JSON) here")
    p.add_argument("--dataset", choices=sorted(SPECS),
                   help="score against this data set's ground-truth "
                        "database")
    p.add_argument("--journey", type=int, default=0,
                   help="journey index (with --dataset)")
    p.add_argument("--coverage", action="store_true",
                   help="with --dataset: also run the pipeline on the "
                        "synthesized catalog and report coverage")
    p.add_argument("--min-frames", type=int, default=8,
                   help="minimum frames per message before tokenizing")
    p.set_defaults(func=cmd_discover)

    p = sub.add_parser(
        "dbc", help="communication-database tooling")
    dbc_sub = p.add_subparsers(dest="dbc_command", required=True)

    dp = dbc_sub.add_parser(
        "diff",
        help="structurally compare two DBC files (exit 1 on deltas)")
    dp.add_argument("--actual", required=True,
                    help="the reference (ground truth) DBC file")
    dp.add_argument("--recovered", required=True,
                    help="the DBC file to compare against it")
    dp.set_defaults(func=cmd_dbc_diff)

    return parser


def main(argv=None, out=sys.stdout):
    args = build_parser().parse_args(argv)
    try:
        return args.func(args, out=out)
    except CliError as exc:
        print("error: {}: {}".format(exc.kind, exc), file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
