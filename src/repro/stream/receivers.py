"""Frame sources and per-channel receive loops.

The shape follows the channel-daemon pattern of CAN tooling (one
receive loop per channel, pulling from the transport and handing frames
to the application queue): a :class:`ChannelReceiver` is an asyncio
task bound to one ``(vehicle, channel)`` stream that awaits the owning
session's bounded queue for every frame. Backpressure is therefore
scoped exactly as the service requires -- a slow vehicle session fills
its own queue and stalls only the receivers delivering *to it*;
receivers of other vehicles' channels never wait on it.

:class:`ReplaySource` is the bundled transport: pre-recorded (or
simulated) byte records served per channel in timestamp order, with
cursor-based resume so a restarted service can replay exactly the
frames no checkpoint had covered.
"""

from __future__ import annotations

import asyncio

from repro.stream.errors import StreamError


class FrameSource:
    """Transport abstraction: per-channel ordered frame streams.

    Implementations expose the channels they carry and an iterator over
    one channel's frames starting at a cursor. Frames are byte-record
    tuples ``(t, l, b_id, m_id, m_info)``; within one channel they must
    be served in a deterministic order (time order for replays), which
    is what makes per-channel cursors exact replay positions.
    """

    def channels(self):
        raise NotImplementedError

    def frames(self, channel, start=0):
        raise NotImplementedError

    def frame_count(self, channel):
        raise NotImplementedError


class ReplaySource(FrameSource):
    """In-memory per-channel replay of a recorded journey."""

    def __init__(self, records):
        self._by_channel = {}
        for record in sorted(records, key=lambda r: (r[0],)):
            self._by_channel.setdefault(record[2], []).append(record)

    def channels(self):
        return sorted(self._by_channel, key=str)

    def frames(self, channel, start=0):
        if channel not in self._by_channel:
            raise StreamError("source carries no channel {!r}".format(channel))
        if start < 0:
            raise StreamError("cursor must not be negative")
        return iter(self._by_channel[channel][start:])

    def frame_count(self, channel):
        return len(self._by_channel.get(channel, ()))

    def total_frames(self):
        return sum(len(rows) for rows in self._by_channel.values())


#: A registered replay channel that has not yet announced a frame time.
_UNANNOUNCED = object()


class ReplayPacer:
    """Event-time merge of one vehicle's replayed channels.

    A recorded journey is replayed as fast as the event loop allows, so
    without coordination the per-channel receive loops drift apart in
    *event time* by arbitrary amounts -- a low-rate channel finishes
    its whole recording while a high-rate one is still near the start,
    racing the session watermark forward and turning scheduler noise
    into late drops. The pacer restores what a live transport
    guarantees for free (cross-channel skew bounded by wall-clock
    arrival): every receiver announces the timestamp of its next frame
    and delivers only while it holds the global minimum ``(t,
    channel)`` key. Delivery order thus becomes a pure function of the
    recorded data, which is also what makes kill-and-resume replay
    byte-identical for multi-channel sources.

    One pacer spans one vehicle's channels only; vehicles never pace
    each other.
    """

    def __init__(self):
        self._keys = {}  # channel -> (t, str(channel)) or _UNANNOUNCED
        self._cond = asyncio.Condition()

    def register(self, channel):
        """Declare a participating channel before any receiver starts."""
        self._keys[channel] = _UNANNOUNCED

    def _my_turn(self, channel):
        mine = self._keys[channel]
        for other, key in self._keys.items():
            if other == channel:
                continue
            if key is _UNANNOUNCED or key < mine:
                return False
        return True

    async def turn(self, channel, t):
        """Announce the next frame's time; wait until it is the minimum."""
        async with self._cond:
            self._keys[channel] = (t, str(channel))
            self._cond.notify_all()
            await self._cond.wait_for(lambda: self._my_turn(channel))

    async def finish(self, channel):
        """Withdraw a channel (stream exhausted or receiver stopped)."""
        async with self._cond:
            self._keys.pop(channel, None)
            self._cond.notify_all()


class ChannelReceiver:
    """Receive loop of one (vehicle, channel) stream.

    ``run`` pulls frames from the source starting at the session's
    checkpointed cursor and awaits ``queue.put`` per frame -- the
    bounded queue is the backpressure boundary. The receiver stops when
    its stream is exhausted or the shared *budget* (a kill switch used
    to stop a service mid-stream) runs out. With a *pacer* the receiver
    additionally waits for its event-time turn before each delivery.
    """

    def __init__(self, vehicle_id, channel, source, queue, start=0,
                 budget=None, pacer=None):
        self.vehicle_id = vehicle_id
        self.channel = channel
        self.source = source
        self.queue = queue
        self.start = start
        self.budget = budget
        self.pacer = pacer
        self.delivered = 0
        self.exhausted = False

    async def run(self):
        try:
            for frame in self.source.frames(self.channel, self.start):
                if self.pacer is not None:
                    await self.pacer.turn(self.channel, frame[0])
                if self.budget is not None and not self.budget.take():
                    return
                await self.queue.put((self.channel, frame))
                self.delivered += 1
            self.exhausted = True
        finally:
            if self.pacer is not None:
                await self.pacer.finish(self.channel)


class FrameBudget:
    """A shared, decrementing frame allowance (the mid-stream kill).

    ``take`` grants one frame until the budget is spent; afterwards
    every receiver stops before delivering another frame, emulating a
    service killed part-way through the day's traffic.
    """

    def __init__(self, limit):
        if limit is not None and limit < 0:
            raise StreamError("frame budget must not be negative")
        self.limit = limit
        self.spent = 0

    def take(self):
        if self.limit is None:
            self.spent += 1
            return True
        if self.spent >= self.limit:
            return False
        self.spent += 1
        return True

    @property
    def exhausted(self):
        return self.limit is not None and self.spent >= self.limit
