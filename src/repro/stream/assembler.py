"""Online time-window assembly with a late-arrival grace period.

The batch pipeline cuts a finished trace with
:func:`~repro.core.incremental.split_into_windows`; a live stream never
finishes, so the same window membership -- a pure function of each
frame's timestamp relative to the first frame seen -- is applied
*online* here. A window seals once the event-time watermark (the
maximum timestamp observed so far) passes the window's end plus a
configurable grace period; sealing in index order preserves the
in-order-windows contract of
:meth:`~repro.core.incremental.IncrementalRunner.process_window`.
Frames that arrive for an already-sealed window are *late*: they are
counted and dropped, never silently reordered into the past.
"""

from __future__ import annotations

import math

from repro.stream.errors import StreamError

#: Schema tag of :meth:`WindowAssembler.export_state` payloads.
ASSEMBLER_STATE_FORMAT = "repro.stream-assembler/1"


class WindowAssembler:
    """Buckets frames into event-time windows and seals them in order.

    Window ``k`` covers ``[origin + k*W, origin + (k+1)*W)`` where
    ``origin`` is the timestamp of the first frame ever added. Indices
    may be negative (a frame older than the origin that arrives within
    the grace period is still assignable); the *floor* -- one past the
    highest sealed index -- only rises, and frames whose window lies
    below it are late drops.
    """

    def __init__(self, window_seconds, grace_seconds=0.0):
        if window_seconds <= 0:
            raise StreamError("window_seconds must be positive")
        if grace_seconds < 0:
            raise StreamError("grace_seconds must not be negative")
        self.window_seconds = float(window_seconds)
        self.grace_seconds = float(grace_seconds)
        self._origin = None
        self._watermark = None
        self._pending = {}  # window index -> [frames in arrival order]
        self._floor = None  # lowest assignable index; None = nothing sealed
        self.late_dropped = 0

    # -- ingestion -------------------------------------------------------
    def window_index(self, t):
        """The window a timestamp belongs to (pure, origin-anchored)."""
        if self._origin is None:
            raise StreamError("no origin yet: add a frame first")
        return math.floor((t - self._origin) / self.window_seconds)

    def add(self, frame):
        """Buffer one frame; returns the windows this arrival sealed.

        The return value is a list of ``(window_index, frames)`` pairs
        in strictly increasing index order, each holding the window's
        frames in arrival order (the consumer sorts by timestamp; see
        ``IncrementalRunner.process_window``).
        """
        t = frame[0]
        if self._origin is None:
            self._origin = t
        index = self.window_index(t)
        if self._floor is not None and index < self._floor:
            self.late_dropped += 1
            return []
        self._pending.setdefault(index, []).append(frame)
        if self._watermark is None or t > self._watermark:
            self._watermark = t
        return self._seal_ready()

    def _window_end(self, index):
        return self._origin + (index + 1) * self.window_seconds

    def _seal_ready(self):
        sealed = []
        for index in sorted(self._pending):
            if self._watermark < self._window_end(index) + self.grace_seconds:
                break
            sealed.append((index, self._pending.pop(index)))
            self._floor = index + 1
        return sealed

    def flush(self):
        """Seal every pending window in index order (drain / shutdown)."""
        sealed = [
            (index, self._pending.pop(index))
            for index in sorted(self._pending)
        ]
        if sealed:
            self._floor = sealed[-1][0] + 1
        return sealed

    # -- introspection ---------------------------------------------------
    @property
    def pending_windows(self):
        return len(self._pending)

    @property
    def pending_frames(self):
        return sum(len(rows) for rows in self._pending.values())

    @property
    def watermark(self):
        return self._watermark

    # -- checkpoint ------------------------------------------------------
    def export_state(self):
        """Picklable snapshot of buffered frames and sealing progress."""
        return {
            "format": ASSEMBLER_STATE_FORMAT,
            "window_seconds": self.window_seconds,
            "grace_seconds": self.grace_seconds,
            "origin": self._origin,
            "watermark": self._watermark,
            "floor": self._floor,
            "late_dropped": self.late_dropped,
            "pending": {
                index: list(rows) for index, rows in self._pending.items()
            },
        }

    @classmethod
    def from_state(cls, payload):
        if not isinstance(payload, dict) or payload.get("format") != \
                ASSEMBLER_STATE_FORMAT:
            raise StreamError("not a window-assembler state payload")
        assembler = cls(payload["window_seconds"], payload["grace_seconds"])
        assembler._origin = payload["origin"]
        assembler._watermark = payload["watermark"]
        assembler._floor = payload["floor"]
        assembler.late_dropped = payload["late_dropped"]
        assembler._pending = {
            index: list(rows)
            for index, rows in payload["pending"].items()
        }
        return assembler
