"""Session-state checkpointing over :class:`repro.fleet.CheckpointStore`.

The fleet store already provides the durability contract the stream
service needs -- stage-to-hidden-sibling, atomic rename, kill-at-any-
instant leaves each checkpoint fully present or fully absent -- so
stream checkpoints are simply runner+assembler state payloads saved
under per-session job ids. Every save replaces the previous snapshot
atomically; a restart therefore resumes each session from its *last
committed* state and replays the frames past the per-channel cursors
recorded inside it.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.fleet.catalog import atomic_write_text
from repro.fleet.checkpoint import CheckpointStore
from repro.obs import stopwatch
from repro.stream.errors import StreamError
from repro.stream.session import SESSION_STATE_FORMAT, VehicleSession

#: Schema tag of the run-directory manifest written by ``stream serve``.
STREAM_STATE_FORMAT = "repro.stream/1"

#: Manifest file name inside a stream run directory.
STREAM_MANIFEST_FILE = "stream.json"

_JOB_PREFIX = "stream-session-"


def session_job_id(vehicle_id):
    """Checkpoint-store job id of one vehicle session."""
    return _JOB_PREFIX + str(vehicle_id)


class StreamCheckpointer:
    """Durable session snapshots + the run manifest of one directory."""

    def __init__(self, run_dir):
        self.root = Path(run_dir)
        self.store = CheckpointStore(run_dir)

    # -- manifest --------------------------------------------------------
    def write_manifest(self, manifest):
        payload = dict(manifest)
        payload["format"] = STREAM_STATE_FORMAT
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        return atomic_write_text(self.root / STREAM_MANIFEST_FILE, text)

    def read_manifest(self):
        path = self.root / STREAM_MANIFEST_FILE
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise StreamError(
                "{!r} is not a stream run directory (no {})".format(
                    str(self.root), STREAM_MANIFEST_FILE
                )
            )
        except ValueError as exc:
            raise StreamError(
                "stream manifest in {!r} is corrupt: {}".format(
                    str(self.root), exc
                )
            )
        if payload.get("format") != STREAM_STATE_FORMAT:
            raise StreamError(
                "stream manifest format {!r} is not {}".format(
                    payload.get("format"), STREAM_STATE_FORMAT
                )
            )
        return payload

    # -- session snapshots -----------------------------------------------
    def save_session(self, session, metrics=None):
        """Atomically commit one session's current state snapshot."""
        payload = session.export_state()
        with stopwatch() as watch:
            path = self.store.save(session_job_id(session.vehicle_id), payload)
        if metrics is not None:
            metrics.inc("stream.checkpoints")
            metrics.observe("stream.checkpoint.seconds", watch.seconds)
        return path

    def load_session(self, vehicle_id, config, context, metrics=None):
        """Rebuild one session from its last committed snapshot."""
        job_id = session_job_id(vehicle_id)
        if not self.store.has(job_id):
            return None
        payload = self.store.load(job_id)
        if not isinstance(payload, dict) or payload.get("format") != \
                SESSION_STATE_FORMAT:
            raise StreamError(
                "checkpoint {!r} is not a session-state payload".format(
                    job_id
                )
            )
        return VehicleSession.from_state(
            payload, config, context, metrics=metrics
        )

    def session_ids(self):
        """Vehicle ids with a committed snapshot, sorted."""
        return sorted(
            job_id[len(_JOB_PREFIX):]
            for job_id in self.store.completed_ids()
            if job_id.startswith(_JOB_PREFIX)
        )

    def session_payload(self, vehicle_id):
        """The raw snapshot dict of one session (for ``stream status``)."""
        job_id = session_job_id(vehicle_id)
        if not self.store.has(job_id):
            return None
        return self.store.load(job_id)

    def checkpoint_mtime(self, vehicle_id):
        """Commit time of one session's snapshot, or None."""
        return self.store.mtime(session_job_id(vehicle_id))
