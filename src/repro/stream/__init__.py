"""repro.stream -- always-on streaming ingest of live fleet traffic.

The paper's operating point is continuous capture ("500 cars produce
1.5 TB per day"), yet until this package every entry point was a batch
caller. Here the windowed-equals-whole guarantee of
:mod:`repro.core.incremental` is put behind a long-running asyncio
service in the channel-daemon receive-loop shape:

* :mod:`repro.stream.assembler` -- the online form of
  :func:`~repro.core.incremental.split_into_windows`: frames are
  bucketed into fixed event-time windows, a window seals once the
  watermark passes its end plus a configurable late-arrival grace
  period, and frames for already-sealed windows are counted as late
  drops;
* :mod:`repro.stream.session` -- one :class:`VehicleSession` per
  vehicle wrapping an :class:`~repro.core.incremental.IncrementalRunner`
  behind a :class:`WindowAssembler`, with per-channel delivery cursors
  and a picklable state snapshot;
* :mod:`repro.stream.receivers` -- per-channel receive loops pulling
  frames from a :class:`FrameSource` and awaiting the owning session's
  bounded queue (backpressure stalls only the channels of the slow
  vehicle, never other receivers);
* :mod:`repro.stream.checkpoint` -- the session-state codec over
  :class:`repro.fleet.CheckpointStore`, so a killed service resumes
  mid-stream and replay of undelivered frames yields byte-identical
  ``finalize()`` output to an uninterrupted run;
* :mod:`repro.stream.service` -- :class:`StreamIngestService` wiring
  receivers, sessions, periodic checkpoints and the ``stream.*``
  metrics together, plus the drain/finalize path the CLI and tests
  drive.
"""

from repro.stream.assembler import WindowAssembler
from repro.stream.checkpoint import (
    STREAM_MANIFEST_FILE,
    STREAM_STATE_FORMAT,
    StreamCheckpointer,
    session_job_id,
)
from repro.stream.errors import StreamError
from repro.stream.receivers import (
    ChannelReceiver,
    FrameBudget,
    FrameSource,
    ReplayPacer,
    ReplaySource,
)
from repro.stream.service import ServeResult, StreamConfig, StreamIngestService
from repro.stream.session import VehicleSession

__all__ = [
    "ChannelReceiver",
    "FrameBudget",
    "FrameSource",
    "ReplayPacer",
    "ReplaySource",
    "STREAM_MANIFEST_FILE",
    "STREAM_STATE_FORMAT",
    "ServeResult",
    "StreamCheckpointer",
    "StreamConfig",
    "StreamError",
    "StreamIngestService",
    "VehicleSession",
    "WindowAssembler",
    "session_job_id",
]
