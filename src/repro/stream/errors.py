"""Error taxonomy of the streaming ingest service."""

from __future__ import annotations


class StreamError(ValueError):
    """Raised for stream service misconfiguration or corrupt state."""
