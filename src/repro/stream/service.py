"""The always-on asyncio ingest service.

:class:`StreamIngestService` wires the pieces of this package into the
long-running shape the paper's fleet capture implies: one bounded
asyncio queue and worker per vehicle session, one receive loop per
(vehicle, channel) stream, periodic state checkpoints through
:class:`repro.fleet.CheckpointStore`, and ``stream.*`` metrics for all
of it.

Durability contract
-------------------
A checkpoint is a consistent snapshot *between* frame ingests: it names
the per-channel replay cursors and carries every byte of runner and
assembler state those cursors imply. Killing the service at an
arbitrary committed checkpoint, restarting, and replaying each
channel's undelivered frames therefore yields ``finalize()`` output
byte-identical to a run that was never interrupted. Frames ingested
after the last commit are simply re-delivered on resume -- the source's
per-channel ordering makes the replay exact, and
``stream.resume.frames_skipped`` / ``stream.frames_received`` make the
re-delivery count observable.

Backpressure
------------
Receivers ``await queue.put`` on the owning session's bounded queue. A
slow session stalls exactly the receivers feeding it; every other
vehicle's receive loops keep draining their channels.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.obs import MetricsRegistry
from repro.stream.checkpoint import StreamCheckpointer
from repro.stream.errors import StreamError
from repro.stream.receivers import ChannelReceiver, FrameBudget, ReplayPacer
from repro.stream.session import VehicleSession


@dataclass(frozen=True)
class StreamConfig:
    """Operating knobs of one service instance.

    ``checkpoint_every`` is the per-session checkpoint cadence in
    ingested frames (0 disables periodic snapshots; the drain snapshot
    is always taken). ``queue_capacity`` bounds each session queue --
    the backpressure boundary.
    """

    window_seconds: float = 1.0
    grace_seconds: float = 0.5
    queue_capacity: int = 64
    checkpoint_every: int = 200

    def __post_init__(self):
        if self.window_seconds <= 0:
            raise StreamError("window_seconds must be positive")
        if self.grace_seconds < 0:
            raise StreamError("grace_seconds must not be negative")
        if self.queue_capacity < 1:
            raise StreamError("queue_capacity must be at least 1")
        if self.checkpoint_every < 0:
            raise StreamError("checkpoint_every must not be negative")


@dataclass
class ServeResult:
    """Outcome of one :meth:`StreamIngestService.serve` call."""

    killed: bool
    frames_delivered: int
    sessions: dict = field(default_factory=dict)  # vehicle_id -> summary


class StreamIngestService:
    """Per-channel receivers feeding checkpointed per-vehicle sessions."""

    def __init__(self, run_dir, stream_config=None, metrics=None):
        self.config = stream_config or StreamConfig()
        self.checkpointer = StreamCheckpointer(run_dir)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.sessions = {}  # vehicle_id -> VehicleSession
        self._sources = {}  # vehicle_id -> FrameSource
        self.resumed = {}  # vehicle_id -> frames skipped via checkpoint

    # -- topology --------------------------------------------------------
    def add_vehicle(self, vehicle_id, source, pipeline_config, context):
        """Register one vehicle's source + pipeline parameterization.

        When the run directory holds a committed snapshot for this
        vehicle the session resumes from it: receivers will start at
        the checkpointed per-channel cursors and the skipped-frame
        count is recorded in ``stream.resume.frames_skipped``.
        """
        if vehicle_id in self.sessions:
            raise StreamError(
                "vehicle {!r} already registered".format(vehicle_id)
            )
        session = self.checkpointer.load_session(
            vehicle_id, pipeline_config, context, metrics=self.metrics
        )
        if session is None:
            session = VehicleSession(
                vehicle_id,
                pipeline_config,
                context,
                self.config.window_seconds,
                self.config.grace_seconds,
                metrics=self.metrics,
            )
        else:
            skipped = sum(session.channel_cursors.values())
            self.resumed[vehicle_id] = skipped
            self.metrics.inc("stream.resume.sessions")
            self.metrics.inc("stream.resume.frames_skipped", skipped)
        self.sessions[vehicle_id] = session
        self._sources[vehicle_id] = source
        self.metrics.set_gauge("stream.sessions.active", len(self.sessions))
        return session

    # -- the receive/ingest loops ----------------------------------------
    async def serve(self, max_frames=None):
        """Run until every source drains (or *max_frames* kills it).

        *max_frames*, when given, is a shared delivery budget across
        all receivers: once spent, every receive loop stops before
        delivering another frame -- the controlled stand-in for a
        service process killed mid-stream. No drain or final checkpoint
        happens for killed sessions; their last *committed* periodic
        snapshot is the resume point, exactly as after a real crash.
        """
        if not self.sessions:
            raise StreamError("no vehicles registered")
        budget = FrameBudget(max_frames)
        workers = []
        all_receivers = []
        for vehicle_id, session in sorted(
            self.sessions.items(), key=lambda kv: str(kv[0])
        ):
            source = self._sources[vehicle_id]
            queue = asyncio.Queue(maxsize=self.config.queue_capacity)
            # One pacer per vehicle: its channels replay in event-time
            # merge order (deterministic), while different vehicles
            # stay completely unsynchronized.
            pacer = ReplayPacer()
            for channel in source.channels():
                pacer.register(channel)
            receivers = [
                ChannelReceiver(
                    vehicle_id,
                    channel,
                    source,
                    queue,
                    start=session.cursor(channel),
                    budget=budget,
                    pacer=pacer,
                )
                for channel in source.channels()
            ]
            all_receivers.extend(receivers)
            workers.append(
                self._run_vehicle(vehicle_id, session, queue, receivers)
            )
        await asyncio.gather(*workers)
        killed = budget.exhausted and not all(
            r.exhausted for r in all_receivers
        )
        result = ServeResult(
            killed=killed,
            frames_delivered=budget.spent,
            sessions={
                vehicle_id: self._session_summary(session)
                for vehicle_id, session in sorted(
                    self.sessions.items(), key=lambda kv: str(kv[0])
                )
            },
        )
        return result

    async def _run_vehicle(self, vehicle_id, session, queue, receivers):
        """One vehicle: receiver tasks + the queue-draining ingest loop."""

        async def _deliver_all():
            await asyncio.gather(*(r.run() for r in receivers))
            await queue.put(None)  # all channels done (or killed)

        delivery = asyncio.ensure_future(_deliver_all())
        depth_gauge = "stream.queue.depth.{}".format(vehicle_id)
        high_water = "stream.queue.high_water.{}".format(vehicle_id)
        cadence = self.config.checkpoint_every
        while True:
            item = await queue.get()
            if item is None:
                break
            channel, frame = item
            self.metrics.gauge(high_water).set_max(queue.qsize() + 1)
            session.ingest(channel, frame)
            self.metrics.set_gauge(depth_gauge, queue.qsize())
            if cadence and session.frames_ingested % cadence == 0:
                self.checkpointer.save_session(session, self.metrics)
        await delivery
        if all(r.exhausted for r in receivers):
            # Clean end of stream: seal whatever the grace period was
            # still holding back, then commit the drained snapshot.
            session.drain()
            self.checkpointer.save_session(session, self.metrics)
        self.metrics.set_gauge(depth_gauge, queue.qsize())

    # -- terminal --------------------------------------------------------
    def finalize_all(self):
        """Finalize every drained session; {vehicle_id: IncrementalResult}.

        Only valid after a clean (non-killed) :meth:`serve`; a killed
        service must be resumed first so no delivered-but-uncommitted
        frames are lost.
        """
        out = {}
        for vehicle_id, session in sorted(
            self.sessions.items(), key=lambda kv: str(kv[0])
        ):
            if not session.drained:
                raise StreamError(
                    "session {!r} not drained; resume the stream before "
                    "finalizing".format(vehicle_id)
                )
            out[vehicle_id] = session.finalize()
        return out

    def _session_summary(self, session):
        return {
            "frames_ingested": session.frames_ingested,
            "windows_sealed": session.windows_sealed,
            "late_dropped": session.late_dropped,
            "pending_windows": session.assembler.pending_windows,
            "pending_frames": session.assembler.pending_frames,
            "drained": session.drained,
            "resumed_from": self.resumed.get(session.vehicle_id, 0),
        }
