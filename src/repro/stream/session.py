"""Per-vehicle ingest sessions: an IncrementalRunner behind a window
assembler.

A :class:`VehicleSession` is the synchronous state machine at the heart
of the streaming service: frames go in (tagged with the channel that
received them), sealed windows come out and are fed to the session's
:class:`~repro.core.incremental.IncrementalRunner` exactly as a batch
caller would feed :func:`~repro.core.incremental.split_into_windows`
output. Keeping the state machine free of the event loop makes
kill-and-resume deterministic and testable without asyncio.

Delivery accounting is per channel: the session records how many frames
of each channel's (deterministically ordered) stream it has fully
ingested. A checkpoint therefore names the exact replay position per
channel, and a restored session fed the remaining frames produces
byte-identical ``finalize()`` output to a session that was never
interrupted -- the streaming extension of the windowed-equals-whole
guarantee.
"""

from __future__ import annotations

from repro.core.incremental import IncrementalRunner
from repro.protocols.frames import BYTE_RECORD_COLUMNS
from repro.stream.assembler import WindowAssembler
from repro.stream.errors import StreamError

#: Schema tag of :meth:`VehicleSession.export_state` payloads.
SESSION_STATE_FORMAT = "repro.stream-session/1"


class VehicleSession:
    """One vehicle's always-on windowed pipeline execution."""

    def __init__(self, vehicle_id, config, context, window_seconds,
                 grace_seconds=0.0, metrics=None):
        self.vehicle_id = vehicle_id
        self.config = config
        self.context = context
        self.metrics = metrics
        self.runner = IncrementalRunner(config)
        self.assembler = WindowAssembler(window_seconds, grace_seconds)
        #: Frames fully ingested per channel -- the replay cursor.
        self.channel_cursors = {}
        self.windows_sealed = 0
        self.frames_ingested = 0
        self._drained = False

    # -- ingestion -------------------------------------------------------
    def ingest(self, channel, frame):
        """Ingest one frame received on *channel*; process sealed windows."""
        if self._drained:
            raise StreamError(
                "session {!r} already drained".format(self.vehicle_id)
            )
        before = self.assembler.late_dropped
        sealed = self.assembler.add(frame)
        # Count the frame as delivered even when it was a late drop: the
        # cursor tracks transport delivery, not window acceptance, so a
        # resumed receiver never re-delivers a frame the assembler has
        # already adjudicated.
        self.channel_cursors[channel] = self.channel_cursors.get(
            channel, 0
        ) + 1
        self.frames_ingested += 1
        if self.metrics is not None:
            self.metrics.inc("stream.frames_received")
            self.metrics.inc("stream.frames_received.{}".format(channel))
            late = self.assembler.late_dropped - before
            if late:
                self.metrics.inc("stream.late_dropped", late)
        self._process_sealed(sealed)
        return len(sealed)

    def _process_sealed(self, sealed):
        for _index, frames in sealed:
            # Window membership is a pure function of the timestamp, so
            # a sealed window's frames may be sorted freely here; the
            # runner re-sorts rows exactly as the whole-trace pipeline
            # does, keeping intra-window disorder invisible.
            rows = sorted(frames, key=lambda r: (r[0],))
            table = self.context.table_from_rows(
                list(BYTE_RECORD_COLUMNS), rows
            )
            self.runner.process_window(table)
            self.windows_sealed += 1
            if self.metrics is not None:
                self.metrics.inc("stream.windows_sealed")

    def drain(self):
        """Seal and process every buffered window (source exhausted)."""
        if self._drained:
            return 0
        sealed = self.assembler.flush()
        self._process_sealed(sealed)
        self._drained = True
        return len(sealed)

    def finalize(self):
        """Terminal: classification, branches, extensions and the merge."""
        if not self._drained:
            self.drain()
        return self.runner.finalize(self.context)

    # -- introspection ---------------------------------------------------
    @property
    def drained(self):
        return self._drained

    @property
    def late_dropped(self):
        return self.assembler.late_dropped

    def cursor(self, channel):
        """Frames of *channel* already ingested (the replay position)."""
        return self.channel_cursors.get(channel, 0)

    # -- checkpoint ------------------------------------------------------
    def export_state(self):
        """Picklable snapshot: runner state + assembler state + cursors."""
        return {
            "format": SESSION_STATE_FORMAT,
            "vehicle_id": self.vehicle_id,
            "channel_cursors": dict(self.channel_cursors),
            "windows_sealed": self.windows_sealed,
            "frames_ingested": self.frames_ingested,
            "drained": self._drained,
            "runner": self.runner.export_state(),
            "assembler": self.assembler.export_state(),
        }

    @classmethod
    def from_state(cls, payload, config, context, metrics=None):
        """Rebuild a session from an :meth:`export_state` payload."""
        if not isinstance(payload, dict) or payload.get("format") != \
                SESSION_STATE_FORMAT:
            raise StreamError("not a vehicle-session state payload")
        session = cls.__new__(cls)
        session.vehicle_id = payload["vehicle_id"]
        session.config = config
        session.context = context
        session.metrics = metrics
        session.runner = IncrementalRunner.from_state(
            config, payload["runner"]
        )
        session.assembler = WindowAssembler.from_state(payload["assembler"])
        session.channel_cursors = dict(payload["channel_cursors"])
        session.windows_sealed = payload["windows_sealed"]
        session.frames_ingested = payload["frames_ingested"]
        session._drained = payload["drained"]
        return session
