"""Outlier detection for numeric signal sequences.

The α and β branches of Algorithm 1 split numeric sequences into
outliers (kept aside as potential errors, lines 16/21) and clean values.
Three standard detectors are provided; all return a boolean mask so the
caller can both remove *and* preserve the outliers, as the paper's merge
step requires.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class OutlierError(ValueError):
    """Raised for invalid detector parameters."""


@dataclass(frozen=True)
class ZScoreDetector:
    """|value - mean| > threshold * std."""

    threshold: float = 3.5

    def __post_init__(self):
        if self.threshold <= 0:
            raise OutlierError("threshold must be positive")

    def mask(self, values):
        x = np.asarray(values, dtype=float)
        if x.size == 0:
            return np.zeros(0, dtype=bool)
        std = x.std()
        if std == 0:
            return np.zeros(x.size, dtype=bool)
        return np.abs(x - x.mean()) > self.threshold * std


@dataclass(frozen=True)
class IqrDetector:
    """Tukey fences: outside [q1 - k*IQR, q3 + k*IQR]."""

    k: float = 3.0

    def __post_init__(self):
        if self.k <= 0:
            raise OutlierError("k must be positive")

    def mask(self, values):
        x = np.asarray(values, dtype=float)
        if x.size == 0:
            return np.zeros(0, dtype=bool)
        q1, q3 = np.percentile(x, [25, 75])
        iqr = q3 - q1
        if iqr == 0:
            # Degenerate distribution (>=50% identical values): any point
            # deviating from the median is an outlier, provided deviants
            # are a minority; otherwise nothing is flagged.
            med = np.median(x)
            deviant = np.abs(x - med) > 0
            if deviant.mean() >= 0.25:
                return np.zeros(x.size, dtype=bool)
            return deviant
        lo, hi = q1 - self.k * iqr, q3 + self.k * iqr
        return (x < lo) | (x > hi)


@dataclass(frozen=True)
class HampelDetector:
    """Rolling-median filter: |x - median| > threshold * MAD in a window."""

    window: int = 11
    threshold: float = 3.0

    def __post_init__(self):
        if self.window < 3 or self.window % 2 == 0:
            raise OutlierError("window must be an odd integer >= 3")
        if self.threshold <= 0:
            raise OutlierError("threshold must be positive")

    def mask(self, values):
        x = np.asarray(values, dtype=float)
        n = x.size
        mask = np.zeros(n, dtype=bool)
        if n == 0:
            return mask
        half = self.window // 2
        scale = 1.4826  # MAD -> std for Gaussian data
        for i in range(n):
            lo = max(0, i - half)
            hi = min(n, i + half + 1)
            window = x[lo:hi]
            med = np.median(window)
            mad = np.median(np.abs(window - med))
            if mad == 0:
                mask[i] = x[i] != med and np.all(window[window != x[i]] == med)
                continue
            mask[i] = abs(x[i] - med) > self.threshold * scale * mad
        return mask


def split_outliers(rows, values, detector):
    """Partition parallel (rows, values) into (outlier_rows, clean_rows).

    This is the paper's ``outlier(K)`` returning ``(K_out, K_rep)`` --
    outliers are *kept*, not discarded, so they can be merged back as
    potential errors after processing.
    """
    mask = detector.mask(values)
    outlier_rows = [r for r, m in zip(rows, mask) if m]
    clean_rows = [r for r, m in zip(rows, mask) if not m]
    return outlier_rows, clean_rows
