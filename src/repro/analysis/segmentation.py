"""Time-series segmentation: Sliding Window, Bottom-Up and SWAB.

Implements the online segmentation algorithm of Keogh, Chu, Hart &
Pazzani, "An online algorithm for segmenting time series" (ICDM 2001) --
reference [7] of the paper -- from scratch: piecewise-linear
approximation with sliding-window and bottom-up strategies and their
combination SWAB (Sliding Window And Bottom-up), which the paper's α
branch uses for trend estimation.

Segments are least-squares linear fits; the error measure is the sum of
squared residuals, as in the original paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Segment:
    """A linear segment over samples [start, end] (inclusive indices).

    ``slope``/``intercept`` describe the least-squares line against the
    *local* sample index (0 at ``start``); ``error`` is the sum of squared
    residuals.
    """

    start: int
    end: int
    slope: float
    intercept: float
    error: float

    @property
    def length(self):
        return self.end - self.start + 1

    def value_at(self, index):
        """Fitted value at absolute sample *index*."""
        return self.intercept + self.slope * (index - self.start)


def fit_segment(values, start, end):
    """Least-squares line over values[start:end+1]."""
    y = np.asarray(values[start : end + 1], dtype=float)
    n = len(y)
    if n == 0:
        raise ValueError("empty segment")
    if n == 1:
        return Segment(start, end, 0.0, float(y[0]), 0.0)
    x = np.arange(n, dtype=float)
    slope, intercept = np.polyfit(x, y, 1)
    residuals = y - (intercept + slope * x)
    return Segment(
        start, end, float(slope), float(intercept), float(residuals @ residuals)
    )


def sliding_window(values, max_error):
    """Grow segments left-to-right until the fit error exceeds max_error."""
    if max_error < 0:
        raise ValueError("max_error must be non-negative")
    n = len(values)
    segments = []
    anchor = 0
    while anchor < n:
        end = anchor + 1
        best = fit_segment(values, anchor, min(end - 1, n - 1))
        while end < n:
            candidate = fit_segment(values, anchor, end)
            if candidate.error > max_error:
                break
            best = candidate
            end += 1
        segments.append(best)
        anchor = best.end + 1
    return segments


def bottom_up(values, max_error):
    """Merge the finest segmentation greedily while error permits."""
    n = len(values)
    if n == 0:
        return []
    if max_error < 0:
        raise ValueError("max_error must be non-negative")
    # Start from segments of length 2 (last may be length 1 or 3).
    boundaries = list(range(0, n, 2))
    segments = []
    for i, start in enumerate(boundaries):
        end = boundaries[i + 1] - 1 if i + 1 < len(boundaries) else n - 1
        segments.append(fit_segment(values, start, end))
    if len(segments) == 1:
        return segments

    def merge_cost(i):
        return fit_segment(values, segments[i].start, segments[i + 1].end)

    merged = [merge_cost(i) for i in range(len(segments) - 1)]
    while merged:
        best_index = min(range(len(merged)), key=lambda i: merged[i].error)
        if merged[best_index].error > max_error:
            break
        segments[best_index] = merged[best_index]
        del segments[best_index + 1]
        del merged[best_index]
        if best_index < len(merged):
            merged[best_index] = merge_cost(best_index)
        if best_index > 0:
            merged[best_index - 1] = merge_cost(best_index - 1)
    return segments


def swab(values, max_error, buffer_size=None):
    """SWAB: bottom-up inside a sliding buffer, emitting leftmost segments.

    ``buffer_size`` defaults to enough samples for roughly five to six
    segments, as recommended in the original paper.
    """
    values = list(values)
    n = len(values)
    if n == 0:
        return []
    if buffer_size is None:
        buffer_size = max(min(n, 40), 8)
    buffer_start = 0
    buffer_end = min(buffer_size, n)  # exclusive
    out = []
    while True:
        window = values[buffer_start:buffer_end]
        segments = bottom_up(window, max_error)
        if not segments:
            break
        leftmost = segments[0]
        absolute = Segment(
            leftmost.start + buffer_start,
            leftmost.end + buffer_start,
            leftmost.slope,
            leftmost.intercept,
            leftmost.error,
        )
        if buffer_end >= n:
            # No more data: flush every remaining segment.
            for seg in segments:
                out.append(
                    Segment(
                        seg.start + buffer_start,
                        seg.end + buffer_start,
                        seg.slope,
                        seg.intercept,
                        seg.error,
                    )
                )
            break
        out.append(absolute)
        consumed = leftmost.end + 1
        buffer_start += consumed
        # Take in enough new points to keep the buffer full.
        buffer_end = min(buffer_start + buffer_size, n)
        if buffer_start >= n:
            break
    return out


def segments_cover(segments, n):
    """True if *segments* partition indices 0..n-1 without gaps/overlap."""
    expected = 0
    for seg in segments:
        if seg.start != expected:
            return False
        expected = seg.end + 1
    return expected == n
