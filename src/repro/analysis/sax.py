"""SAX: Symbolic Aggregate approXimation.

Implements Lin, Keogh, Lonardi & Chiu, "A symbolic representation of time
series, with implications for streaming algorithms" (DMKD 2004) --
reference [9] of the paper -- from scratch: z-normalization, Piecewise
Aggregate Approximation (PAA), discretization against equiprobable
Gaussian breakpoints and the MINDIST lower-bounding distance.

The paper's α branch maps each SWAB segment onto a SAX symbol, giving a
(trend, symbol) tuple per segment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"

MIN_ALPHABET = 2
MAX_ALPHABET = 20


class SaxError(ValueError):
    """Raised for invalid SAX parameters."""


def gaussian_breakpoints(alphabet_size):
    """Breakpoints splitting N(0,1) into *alphabet_size* equiprobable bins."""
    if not MIN_ALPHABET <= alphabet_size <= MAX_ALPHABET:
        raise SaxError(
            "alphabet size must be in {}..{}".format(MIN_ALPHABET, MAX_ALPHABET)
        )
    quantiles = np.arange(1, alphabet_size) / alphabet_size
    return tuple(float(norm.ppf(q)) for q in quantiles)


def znormalize(values, epsilon=1e-8):
    """Zero-mean unit-variance normalization.

    Near-constant series (std < epsilon) normalize to all zeros rather
    than amplifying noise, per common SAX practice.
    """
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        return x
    std = x.std()
    if std < epsilon:
        return np.zeros_like(x)
    return (x - x.mean()) / std


def paa(values, num_segments):
    """Piecewise Aggregate Approximation to *num_segments* means.

    Handles series lengths not divisible by the segment count by
    fractional assignment (each sample contributes proportionally to the
    segments it spans), as in the reference implementation.
    """
    x = np.asarray(values, dtype=float)
    n = x.size
    if num_segments < 1:
        raise SaxError("num_segments must be positive")
    if n == 0:
        raise SaxError("cannot PAA an empty series")
    if n == num_segments:
        return x.copy()
    if n % num_segments == 0:
        return x.reshape(num_segments, n // num_segments).mean(axis=1)
    # Fractional cover: upsample by num_segments, then block-average.
    upsampled = np.repeat(x, num_segments)
    return upsampled.reshape(num_segments, n).mean(axis=1)


def symbolize_value(value, breakpoints):
    """Map one normalized value to its symbol index (0-based)."""
    index = 0
    for bp in breakpoints:
        if value < bp:
            break
        index += 1
    return index


@dataclass(frozen=True)
class SaxEncoder:
    """SAX pipeline: znorm -> PAA -> symbols.

    Parameters
    ----------
    alphabet_size:
        Number of symbols (2..20).
    word_length:
        Number of PAA segments per word when encoding whole series.
    """

    alphabet_size: int = 5
    word_length: int = 8

    def __post_init__(self):
        gaussian_breakpoints(self.alphabet_size)  # validates
        if self.word_length < 1:
            raise SaxError("word_length must be positive")

    @property
    def breakpoints(self):
        return gaussian_breakpoints(self.alphabet_size)

    def encode_word(self, values):
        """Whole-series SAX word of length ``word_length``."""
        normalized = znormalize(values)
        reduced = paa(normalized, self.word_length)
        bps = self.breakpoints
        return "".join(
            _ALPHABET[symbolize_value(v, bps)] for v in reduced
        )

    def encode_values(self, values):
        """Symbol per value (no PAA) against the series' own statistics."""
        normalized = znormalize(values)
        bps = self.breakpoints
        return [
            _ALPHABET[symbolize_value(v, bps)] for v in normalized
        ]

    def symbol_for_level(self, value, mean, std, epsilon=1e-8):
        """Symbol for one value given external normalization statistics.

        Used by the α branch: segment means are symbolized against the
        statistics of the whole signal sequence, so symbols stay
        comparable across segments.
        """
        if std < epsilon:
            normalized = 0.0
        else:
            normalized = (value - mean) / std
        return _ALPHABET[symbolize_value(normalized, self.breakpoints)]

    def mindist(self, word_a, word_b, series_length):
        """MINDIST lower bound between two SAX words (Lin et al. 2004)."""
        if len(word_a) != len(word_b):
            raise SaxError("words must have equal length")
        bps = (-math.inf,) + self.breakpoints + (math.inf,)
        total = 0.0
        for sa, sb in zip(word_a, word_b):
            i, j = _ALPHABET.index(sa), _ALPHABET.index(sb)
            if abs(i - j) <= 1:
                continue
            hi, lo = max(i, j), min(i, j)
            gap = bps[hi] - bps[lo + 1]
            total += gap * gap
        return math.sqrt(series_length / len(word_a)) * math.sqrt(total)
