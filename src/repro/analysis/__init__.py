"""Time-series algorithms used by the type-dependent processing stage."""

from repro.analysis.outliers import (
    HampelDetector,
    IqrDetector,
    ZScoreDetector,
    split_outliers,
)
from repro.analysis.sax import SaxEncoder, gaussian_breakpoints, paa, znormalize
from repro.analysis.segmentation import (
    Segment,
    bottom_up,
    fit_segment,
    segments_cover,
    sliding_window,
    swab,
)
from repro.analysis.smoothing import (
    ExponentialSmoothing,
    MedianFilter,
    MovingAverage,
)
from repro.analysis.trend import (
    DECREASING,
    INCREASING,
    STEADY,
    TrendClassifier,
    gradient,
)

__all__ = [
    "Segment",
    "swab",
    "bottom_up",
    "sliding_window",
    "fit_segment",
    "segments_cover",
    "SaxEncoder",
    "gaussian_breakpoints",
    "paa",
    "znormalize",
    "ZScoreDetector",
    "IqrDetector",
    "HampelDetector",
    "split_outliers",
    "MovingAverage",
    "ExponentialSmoothing",
    "MedianFilter",
    "TrendClassifier",
    "gradient",
    "INCREASING",
    "DECREASING",
    "STEADY",
]
