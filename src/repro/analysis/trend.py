"""Trend estimation.

The α branch derives a trend per SWAB segment from the fitted slope; the
β branch estimates trends of ordinal sequences "using the gradient"
(Sec. 4.2). Trends are the categorical labels that appear in the state
representation of Table 4: increasing / decreasing / steady.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

INCREASING = "increasing"
DECREASING = "decreasing"
STEADY = "steady"


@dataclass(frozen=True)
class TrendClassifier:
    """Classify slopes into trend labels.

    ``steady_threshold`` is the absolute slope (per sample) below which a
    segment counts as steady; scale it to the signal's value range when
    known.
    """

    steady_threshold: float = 1e-3

    def classify_slope(self, slope):
        if slope > self.steady_threshold:
            return INCREASING
        if slope < -self.steady_threshold:
            return DECREASING
        return STEADY

    def classify_gradient(self, values):
        """Trend label per value from the discrete gradient.

        The first element has no predecessor and is labelled from the
        forward difference, matching ``numpy.gradient`` edge handling.
        """
        x = np.asarray(values, dtype=float)
        if x.size == 0:
            return []
        if x.size == 1:
            return [STEADY]
        grad = np.gradient(x)
        return [self.classify_slope(g) for g in grad]


def gradient(values):
    """Discrete gradient (numpy.gradient) as a list of floats."""
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        return []
    if x.size == 1:
        return [0.0]
    return [float(g) for g in np.gradient(x)]
