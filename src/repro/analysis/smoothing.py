"""Smoothing filters for the α branch (Algorithm 1, before SWAB)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class SmoothingError(ValueError):
    """Raised for invalid filter parameters."""


@dataclass(frozen=True)
class MovingAverage:
    """Centered moving average with edge-shrinking windows.

    Window edges shrink near the series boundaries so the output has the
    same length as the input and no phase shift.
    """

    window: int = 5

    def __post_init__(self):
        if self.window < 1:
            raise SmoothingError("window must be >= 1")

    def smooth(self, values):
        x = np.asarray(values, dtype=float)
        n = x.size
        if n == 0 or self.window == 1:
            return x.copy()
        half = self.window // 2
        csum = np.concatenate(([0.0], np.cumsum(x)))
        out = np.empty(n)
        for i in range(n):
            lo = max(0, i - half)
            hi = min(n, i + half + 1)
            out[i] = (csum[hi] - csum[lo]) / (hi - lo)
        return out


@dataclass(frozen=True)
class ExponentialSmoothing:
    """Classic single exponential smoothing with factor alpha."""

    alpha: float = 0.3

    def __post_init__(self):
        if not 0 < self.alpha <= 1:
            raise SmoothingError("alpha must be in (0, 1]")

    def smooth(self, values):
        x = np.asarray(values, dtype=float)
        if x.size == 0:
            return x.copy()
        out = np.empty_like(x)
        out[0] = x[0]
        a = self.alpha
        for i in range(1, x.size):
            out[i] = a * x[i] + (1 - a) * out[i - 1]
        return out


@dataclass(frozen=True)
class MedianFilter:
    """Rolling median; robust against residual spikes."""

    window: int = 5

    def __post_init__(self):
        if self.window < 1 or self.window % 2 == 0:
            raise SmoothingError("window must be an odd integer >= 1")

    def smooth(self, values):
        x = np.asarray(values, dtype=float)
        n = x.size
        if n == 0 or self.window == 1:
            return x.copy()
        half = self.window // 2
        out = np.empty(n)
        for i in range(n):
            lo = max(0, i - half)
            hi = min(n, i + half + 1)
            out[i] = np.median(x[lo:hi])
        return out
