"""Run reports: spans + metrics + metadata, serializable and validated.

A :class:`RunReport` is the unit of observability output: the pipeline
returns one per run, the CLI writes one with ``--report FILE``, and the
fuzz harness embeds one in every divergence reproducer. The JSON shape
is versioned (``format`` field) and :func:`validate_report` checks it
structurally, so report regressions fail fast in CI without a JSON
Schema dependency.
"""

from __future__ import annotations

import json

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder

#: Version tag of the serialized report shape.
REPORT_FORMAT = "repro.obs/1"


class ReportSchemaError(ValueError):
    """Raised by :func:`validate_report` for malformed report payloads."""


class RunReport:
    """One component run's observability bundle.

    Parameters
    ----------
    name:
        What ran, e.g. ``"pipeline.run"`` or ``"fuzz.divergence"``.
    metrics, spans:
        Existing registry/recorder to adopt; fresh ones by default.
    """

    def __init__(self, name, metrics=None, spans=None):
        self.name = name
        self.meta = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans = spans if spans is not None else SpanRecorder()

    def set_meta(self, **entries):
        self.meta.update(entries)
        return self

    def span(self, name, **attrs):
        return self.spans.span(name, **attrs)

    def merge_registry(self, registry, prefix=""):
        """Fold a component's registry (e.g. an executor's) in."""
        registry.merge_into(self.metrics, prefix=prefix)
        return self

    def merge(self, other, prefix=""):
        """Fold another :class:`RunReport` into this one; returns self.

        Aggregation semantics (what the fleet layer applies per-trace
        reports with): counters add, gauges take *other*'s value,
        histograms extend with *other*'s observations, spans merge by
        name with seconds accumulating, and *other*'s meta entries fill
        in only keys this report does not set yet. *prefix* is applied
        to metric names only (span names stay comparable across runs).
        """
        self.metrics.merge(other.metrics, prefix=prefix)
        self.spans.merge(other.spans)
        for key, value in other.meta.items():
            self.meta.setdefault(key, value)
        return self

    # -- serialization ---------------------------------------------------
    def to_dict(self):
        payload = {
            "format": REPORT_FORMAT,
            "name": self.name,
            "meta": dict(self.meta),
            "spans": self.spans.to_list(),
        }
        payload.update(self.metrics.snapshot())
        return payload

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False,
                          default=str)

    def write(self, path):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")
        return path

    def to_text(self):
        """Human-readable summary (span tree + non-zero metrics)."""
        lines = ["run report: {}".format(self.name)]
        for key, value in sorted(self.meta.items()):
            lines.append("  meta {} = {}".format(key, value))
        if self.spans.spans:
            lines.append("spans:")
            for span in self.spans.spans:
                _render_span(span, lines, indent=1)
        counters = self.metrics.counters()
        if counters:
            lines.append("counters:")
            for name, value in counters.items():
                lines.append("  {} = {}".format(name, value))
        gauges = self.metrics.gauges()
        if gauges:
            lines.append("gauges:")
            for name, value in gauges.items():
                lines.append("  {} = {}".format(name, value))
        histograms = self.metrics.histograms()
        if histograms:
            lines.append("histograms:")
            for name, summary in histograms.items():
                lines.append(
                    "  {}: n={} mean={:.6f} p50={} p95={}".format(
                        name,
                        summary["count"],
                        summary.get("mean", 0.0),
                        summary.get("p50", "-"),
                        summary.get("p95", "-"),
                    )
                )
        return "\n".join(lines)


def _render_span(span, lines, indent):
    attrs = ""
    if span.attrs:
        attrs = "  [{}]".format(
            ", ".join(
                "{}={}".format(k, v) for k, v in sorted(span.attrs.items())
            )
        )
    lines.append(
        "{}{} {:.6f}s{}".format("  " * indent, span.name, span.seconds, attrs)
    )
    for child in span.children:
        _render_span(child, lines, indent + 1)


# ---------------------------------------------------------------------------
# Structural validation (the "report schema")
# ---------------------------------------------------------------------------


def _fail(errors, message):
    errors.append(message)


def _check_span(span, path, errors):
    if not isinstance(span, dict):
        return _fail(errors, "{}: span must be an object".format(path))
    if not isinstance(span.get("name"), str) or not span.get("name"):
        _fail(errors, "{}: span needs a non-empty string 'name'".format(path))
    seconds = span.get("seconds")
    if not isinstance(seconds, (int, float)) or isinstance(seconds, bool) \
            or seconds < 0:
        _fail(errors, "{}: span 'seconds' must be a number >= 0".format(path))
    attrs = span.get("attrs", {})
    if not isinstance(attrs, dict):
        _fail(errors, "{}: span 'attrs' must be an object".format(path))
    children = span.get("children", [])
    if not isinstance(children, list):
        return _fail(errors, "{}: span 'children' must be a list".format(path))
    for i, child in enumerate(children):
        _check_span(child, "{}.children[{}]".format(path, i), errors)


_HISTOGRAM_NUMERIC = ("total", "mean", "min", "max", "p50", "p95")


def validate_report(payload):
    """Check a report payload against the ``repro.obs/1`` shape.

    Returns the payload when valid; raises :class:`ReportSchemaError`
    listing every problem otherwise. Accepts a dict or a JSON string.
    """
    if isinstance(payload, (str, bytes)):
        try:
            payload = json.loads(payload)
        except ValueError as exc:
            raise ReportSchemaError("report is not valid JSON: {}".format(exc))
    errors = []
    if not isinstance(payload, dict):
        raise ReportSchemaError("report must be a JSON object")
    if payload.get("format") != REPORT_FORMAT:
        _fail(errors, "format must be {!r}, got {!r}".format(
            REPORT_FORMAT, payload.get("format")))
    if not isinstance(payload.get("name"), str) or not payload.get("name"):
        _fail(errors, "name must be a non-empty string")
    if not isinstance(payload.get("meta", {}), dict):
        _fail(errors, "meta must be an object")
    spans = payload.get("spans")
    if not isinstance(spans, list):
        _fail(errors, "spans must be a list")
    else:
        for i, span in enumerate(spans):
            _check_span(span, "spans[{}]".format(i), errors)
    counters = payload.get("counters")
    if not isinstance(counters, dict):
        _fail(errors, "counters must be an object")
    else:
        for name, value in counters.items():
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 0:
                _fail(errors, "counters[{!r}] must be an int >= 0".format(name))
    gauges = payload.get("gauges")
    if not isinstance(gauges, dict):
        _fail(errors, "gauges must be an object")
    else:
        for name, value in gauges.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                _fail(errors, "gauges[{!r}] must be a number".format(name))
    histograms = payload.get("histograms")
    if not isinstance(histograms, dict):
        _fail(errors, "histograms must be an object")
    else:
        for name, summary in histograms.items():
            if not isinstance(summary, dict):
                _fail(errors, "histograms[{!r}] must be an object".format(name))
                continue
            count = summary.get("count")
            if not isinstance(count, int) or isinstance(count, bool) \
                    or count < 0:
                _fail(errors, "histograms[{!r}].count must be an int >= 0"
                      .format(name))
            for key in _HISTOGRAM_NUMERIC:
                if key in summary and (
                    not isinstance(summary[key], (int, float))
                    or isinstance(summary[key], bool)
                ):
                    _fail(errors, "histograms[{!r}].{} must be a number"
                          .format(name, key))
    if errors:
        raise ReportSchemaError(
            "invalid run report: {}".format("; ".join(errors))
        )
    return payload
