"""Nested wall-time spans and the stopwatch primitive.

This module is the repository's only sanctioned caller of
``time.perf_counter`` (enforced by a grep in the tier-1 suite): every
layer that used to hand-roll ``start = perf_counter(); ...; elapsed``
now uses either :func:`stopwatch` (flat timing) or
:meth:`SpanRecorder.span` (nested stage timing feeding a
:class:`~repro.obs.report.RunReport`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Elapsed wall time of one ``with stopwatch() as sw`` block."""

    seconds: float = 0.0
    _start: float = 0.0

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.seconds += time.perf_counter() - self._start
        return False


def stopwatch():
    """A fresh :class:`Stopwatch` (usable directly as a context manager)."""
    return Stopwatch()


@dataclass
class Span:
    """One named, timed region with attributes and child spans.

    ``seconds`` accumulates: re-entering the same span name at the same
    nesting level (see :meth:`SpanRecorder.span`) adds to the existing
    span instead of creating a sibling, which is how per-item loop
    stages (reduce/extend/branch over signals) report one total.
    """

    name: str
    seconds: float = 0.0
    attrs: dict = field(default_factory=dict)
    children: list = field(default_factory=list)

    def set(self, **attrs):
        """Attach (or overwrite) attributes, e.g. rows_in/rows_out."""
        self.attrs.update(attrs)
        return self

    def child(self, name):
        for span in self.children:
            if span.name == name:
                return span
        return None

    def copy(self):
        """Deep copy (merging must never alias the source report)."""
        return Span(
            self.name,
            self.seconds,
            dict(self.attrs),
            [c.copy() for c in self.children],
        )

    def merge(self, other):
        """Fold *other* (a same-named span) into this one.

        Seconds accumulate, attributes take *other*'s values, children
        merge recursively by name -- the same accumulate-by-name rule
        :meth:`SpanRecorder.span` applies within one recording.
        """
        self.seconds += other.seconds
        self.attrs.update(other.attrs)
        for child in other.children:
            _merge_span_into(self.children, child)
        return self

    def to_dict(self):
        out = {"name": self.name, "seconds": self.seconds}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


class SpanRecorder:
    """Collects a forest of :class:`Span` objects via context managers."""

    def __init__(self):
        self.spans = []
        self._stack = []

    def _level(self):
        return self._stack[-1].children if self._stack else self.spans

    @contextmanager
    def span(self, name, merge=True, **attrs):
        """Time a region as a span nested under the currently open one.

        With ``merge=True`` (the default) a span named like an existing
        sibling accumulates into it -- loop bodies produce one span per
        stage, not one per iteration. ``attrs`` are set on entry and can
        be extended via the yielded span's :meth:`Span.set`.
        """
        level = self._level()
        span = None
        if merge:
            for existing in level:
                if existing.name == name:
                    span = existing
                    break
        if span is None:
            span = Span(name)
            level.append(span)
        span.set(**attrs)
        self._stack.append(span)
        start = time.perf_counter()
        try:
            yield span
        finally:
            span.seconds += time.perf_counter() - start
            self._stack.pop()

    def merge(self, other):
        """Fold another recorder's span forest into this one.

        Spans merge by name at each level (seconds add, attrs
        overwrite); unseen spans are deep-copied in, so the merged
        recorder never aliases *other*'s mutable state. Returns self.
        """
        for span in other.spans:
            _merge_span_into(self.spans, span)
        return self

    def find(self, name):
        """Top-level span by name (None when absent)."""
        for span in self.spans:
            if span.name == name:
                return span
        return None

    def seconds(self, name, default=0.0):
        span = self.find(name)
        return span.seconds if span is not None else default

    def total_seconds(self):
        return sum(span.seconds for span in self.spans)

    def to_list(self):
        return [span.to_dict() for span in self.spans]


def _merge_span_into(level, span):
    """Merge *span* into the sibling list *level* (by name), copying."""
    for existing in level:
        if existing.name == span.name:
            return existing.merge(span)
    copy = span.copy()
    level.append(copy)
    return copy
