"""Structured observability: metrics, spans and run reports.

The paper's framework is pitched as a large-scale distributable system
(a 70-node Spark cluster in the evaluation); judging any performance
work on the reproduction needs one consistent way to see where time and
rows go. This package is that substrate:

* :mod:`repro.obs.metrics` -- :class:`MetricsRegistry` with counters,
  gauges and histograms, plus the shared nearest-rank percentile
  helpers every order-statistic in the repository routes through;
* :mod:`repro.obs.spans` -- :func:`SpanRecorder.span` nested wall-time
  spans and the :func:`stopwatch` primitive (the only sanctioned home
  of ``time.perf_counter``);
* :mod:`repro.obs.report` -- :class:`RunReport`, a JSON/text-serializable
  bundle of spans + metrics + metadata with a validating schema check.

Everything here is dependency-free and import-light so any layer
(engine, core pipeline, CLI, baselines, test harnesses) can use it
without cycles.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RuleFireCounter,
    median,
    nearest_rank_index,
    percentile,
)
from repro.obs.report import (
    REPORT_FORMAT,
    ReportSchemaError,
    RunReport,
    validate_report,
)
from repro.obs.spans import Span, SpanRecorder, Stopwatch, stopwatch

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REPORT_FORMAT",
    "ReportSchemaError",
    "RuleFireCounter",
    "RunReport",
    "Span",
    "SpanRecorder",
    "Stopwatch",
    "median",
    "nearest_rank_index",
    "percentile",
    "stopwatch",
    "validate_report",
]
