"""Counters, gauges, histograms and the shared percentile helpers.

Percentiles use the *nearest-rank* definition throughout: the q-th
percentile of n sorted values is the value at index ``ceil(q/100 * n) -
1``. That definition is exact for the small-n case this repository
cares about (per-signal gap statistics over a handful of instances) and
has no interpolation ambiguity: p0 is the minimum, p100 the maximum,
and p50 of an even-length sequence is the lower-middle element.

Two previously hand-rolled order statistics were wrong and now route
through here:

* ``core/profiling.py`` computed ``gaps[int(len(gaps) * 0.95)]`` for
  p95, which for n = 20 indexes element 19 -- the maximum, i.e. p100;
* ``core/profiling.py`` and ``core/classification.py`` both took
  ``values[len(values) // 2]`` as the median, the *upper* middle for
  even n, and could disagree with any consumer using the lower one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def nearest_rank_index(n, q):
    """Index of the q-th percentile in an n-element sorted sequence.

    ``ceil(q/100 * n) - 1``, clamped into ``[0, n - 1]`` so q = 0 maps
    to the minimum rather than index -1.
    """
    if n <= 0:
        raise ValueError("need at least one value for a percentile")
    if not 0 <= q <= 100:
        raise ValueError("percentile must be in [0, 100], got {}".format(q))
    return min(max(math.ceil(q / 100.0 * n) - 1, 0), n - 1)


def percentile(values, q):
    """Nearest-rank q-th percentile of *values* (any iterable)."""
    ordered = sorted(values)
    return ordered[nearest_rank_index(len(ordered), q)]


def median(values):
    """Nearest-rank median (p50): lower-middle element for even n."""
    return percentile(values, 50)


@dataclass
class Counter:
    """A monotonically increasing integer metric."""

    name: str
    value: int = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counters only increase; use a gauge")
        self.value += amount
        return self.value


@dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    name: str
    value: float = 0.0

    def set(self, value):
        self.value = value
        return self.value

    def set_max(self, value):
        """Keep the running maximum (e.g. largest pickled task)."""
        if value > self.value:
            self.value = value
        return self.value


@dataclass
class Histogram:
    """A distribution of observed values with nearest-rank percentiles."""

    name: str
    _values: list = field(default_factory=list)

    def observe(self, value):
        self._values.append(value)

    @property
    def count(self):
        return len(self._values)

    @property
    def total(self):
        return sum(self._values)

    @property
    def mean(self):
        return self.total / len(self._values) if self._values else 0.0

    @property
    def min(self):
        return min(self._values) if self._values else None

    @property
    def max(self):
        return max(self._values) if self._values else None

    def percentile(self, q):
        if not self._values:
            raise ValueError(
                "histogram {!r} is empty; no percentile".format(self.name)
            )
        return percentile(self._values, q)

    def values(self):
        return tuple(self._values)

    def summary(self):
        """Dict summary used by report serialization."""
        if not self._values:
            return {"count": 0, "total": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


class MetricsRegistry:
    """Named counters, gauges and histograms, created on first use.

    One registry per component (an executor, a pipeline run, a fuzz
    campaign); :meth:`snapshot` turns it into plain dicts for a
    :class:`~repro.obs.report.RunReport` and :meth:`merge_into` folds
    one registry into another (optionally prefixing names) when a
    parent report aggregates sub-components.
    """

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    # -- accessors (get-or-create) --------------------------------------
    def counter(self, name):
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name):
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name):
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    # -- conveniences ---------------------------------------------------
    def inc(self, name, amount=1):
        return self.counter(name).inc(amount)

    def observe(self, name, value):
        self.histogram(name).observe(value)

    def set_gauge(self, name, value):
        return self.gauge(name).set(value)

    def counters(self):
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauges(self):
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def histograms(self):
        return {
            name: h.summary() for name, h in sorted(self._histograms.items())
        }

    def reset(self):
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def snapshot(self):
        """Plain-dict view: {"counters": ..., "gauges": ..., "histograms": ...}."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": self.histograms(),
        }

    def merge_into(self, other, prefix=""):
        """Fold this registry's metrics into *other* (adding counters,
        overwriting gauges, extending histograms)."""
        for name, metric in self._counters.items():
            other.counter(prefix + name).inc(metric.value)
        for name, metric in self._gauges.items():
            other.gauge(prefix + name).set(metric.value)
        for name, metric in self._histograms.items():
            target = other.histogram(prefix + name)
            for value in metric.values():
                target.observe(value)
        return other

    def merge(self, other, prefix=""):
        """Fold *other*'s metrics into this registry; returns self.

        The inverse orientation of :meth:`merge_into`, for aggregators
        that accumulate many component registries into one (the fleet
        layer merges per-trace pipeline registries this way): counters
        add, gauges take *other*'s value (last write wins), histograms
        extend with *other*'s observations.
        """
        other.merge_into(self, prefix=prefix)
        return self


class RuleFireCounter:
    """List-like trace sink turning optimizer rule fires into counters.

    :func:`repro.engine.optimizer.optimize` appends the name of every
    rule that fires to its ``trace`` argument; handing it one of these
    instead of a list records ``optimizer.rule.<name>`` counters in the
    owning registry.
    """

    def __init__(self, registry, prefix="optimizer.rule."):
        self._registry = registry
        self._prefix = prefix

    def append(self, rule_name):
        self._registry.inc(self._prefix + rule_name)
