"""Baseline: the sequential in-house monitoring tool of the comparison."""

from repro.baseline.inhouse import IngestStats, InHouseError, InHouseTool

__all__ = ["InHouseTool", "InHouseError", "IngestStats"]
