"""Sequential in-house analyzer (the paper's baseline, ref. [5]).

Models the OEM's single-machine tool (CARMEN, "comparable to
Wireshark") with exactly the two properties the paper's comparison rests
on:

* "the in-house tool requires to ingest signals to process them while
  performing interpretation on ingest" -- every journey under inspection
  must be fully ingested, and ingest interprets **all** signals of every
  known message type;
* "the existing approach requires to loop through all data points in
  order to determine relevant signals. Thus, extraction time scales
  linearly with rows to interpret. This extraction time does not change
  with the number of extracted signals as extraction is done within one
  loop."

After ingest, per-signal lookups are cheap -- which is fine for single
journeys but, as Table 6 shows, loses against the distributed pipeline
once many journeys are processed for few signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import stopwatch


class InHouseError(RuntimeError):
    """Raised when extraction is attempted before ingest."""


@dataclass
class IngestStats:
    """Bookkeeping of one ingest run."""

    rows_scanned: int = 0
    signals_interpreted: int = 0
    seconds: float = 0.0


@dataclass
class InHouseTool:
    """Single-machine monitoring tool: ingest-then-inspect.

    Parameters
    ----------
    database:
        The :class:`~repro.network.NetworkDatabase` describing every
        known message; ingest interprets every signal of every known
        message, relevant or not.
    """

    database: object
    _store: dict = field(default_factory=dict)  # s_id -> list[(t, v, b_id)]
    _ingested: bool = False
    stats: IngestStats = field(default_factory=IngestStats)

    def ingest(self, byte_records):
        """Sequentially scan one journey's raw records, interpreting all.

        ``byte_records`` is an iterable of ``(t, l, b_id, m_id, m_info)``
        tuples. Unknown message types are skipped (a real tool logs
        them). May be called once per journey; the store accumulates.
        """
        with stopwatch() as watch:
            rule_cache = {}
            for t, payload, b_id, m_id, _m_info in byte_records:
                self.stats.rows_scanned += 1
                key = (b_id, m_id)
                rules = rule_cache.get(key)
                if rules is None:
                    try:
                        message = self.database.message(b_id, m_id)
                    except KeyError:
                        rules = ()
                    else:
                        rules = tuple(
                            (s.name, message.interpretation_rule(s.name))
                            for s in message.signals
                        )
                    rule_cache[key] = rules
                for s_id, rule in rules:
                    value = rule.interpret(payload)
                    self.stats.signals_interpreted += 1
                    if value is None:
                        continue
                    self._store.setdefault(s_id, []).append((t, value, b_id))
            self._ingested = True
        self.stats.seconds += watch.seconds
        return self.stats

    def ingest_journeys(self, journeys):
        """Ingest several journeys (lists of byte records) in sequence."""
        for journey in journeys:
            self.ingest(journey)
        return self.stats

    def extract(self, signal_ids):
        """Look up the requested signals from the ingested store.

        This is the cheap post-ingest step; the measured "extraction
        time" of the baseline is the ingest (see Table 6 protocol).
        """
        if not self._ingested:
            raise InHouseError("extract() before ingest(): nothing loaded")
        out = {}
        for s_id in signal_ids:
            out[s_id] = list(self._store.get(s_id, ()))
        return out

    def known_signals(self):
        return tuple(sorted(self._store))

    def clear(self):
        """Drop the ingested store (a new analysis re-ingests, as the
        paper notes existing tools must do per analysis)."""
        self._store.clear()
        self._ingested = False
        self.stats = IngestStats()
