"""Bit-level signal packing and unpacking.

In-vehicle signals are packed into frame payloads at arbitrary bit
positions, with either Intel (little-endian) or Motorola (big-endian) bit
ordering, optional two's-complement signedness and a linear
physical-value mapping ``physical = scale * raw + offset`` -- the same
model used by DBC/FIBEX databases. This module implements that packing
from scratch; it is the ``u_2`` workhorse behind the paper's
interpretation rules (Sec. 3.2).

Bit numbering follows the DBC convention: bit ``i`` lives in byte
``i // 8`` at in-byte position ``i % 8`` (LSB = 0). For Intel signals the
start bit is the least-significant bit of the raw value and the value
grows towards higher bit numbers. For Motorola signals the start bit is
the *most*-significant bit and the value grows towards lower in-byte
positions, wrapping to the next byte's bit 7 (the "sawtooth").
"""

from __future__ import annotations

from dataclasses import dataclass, field

INTEL = "intel"
MOTOROLA = "motorola"


class CodecError(ValueError):
    """Raised when an encoding is inconsistent or a value does not fit."""


class ShortPayloadError(CodecError):
    """A payload is too short to hold the bytes a rule needs.

    The one structured truncation error of the decode stack: raw
    extraction (interpreted and compiled), rule-level relevant-byte
    slicing and SOME/IP section lookup all raise this same type, so
    truncated frames surface identically no matter which execution
    path (row-interpreted, row-compiled, columnar batch) touched them.
    """


def _intel_bit_positions(start_bit, length):
    """Absolute bit positions, LSB first, for an Intel signal."""
    return list(range(start_bit, start_bit + length))


def _motorola_bit_positions(start_bit, length):
    """Absolute bit positions, LSB first, for a Motorola signal.

    ``start_bit`` addresses the MSB. Successive (less significant) bits
    run from in-byte position down to 0, then jump to the next byte's
    bit 7.
    """
    positions_msb_first = []
    byte_index = start_bit // 8
    in_byte = start_bit % 8
    for _unused in range(length):
        positions_msb_first.append(byte_index * 8 + in_byte)
        if in_byte == 0:
            byte_index += 1
            in_byte = 7
        else:
            in_byte -= 1
    return positions_msb_first[::-1]


@dataclass(frozen=True)
class SignalEncoding:
    """How one signal is laid out in a payload and scaled to physical units.

    Parameters
    ----------
    start_bit:
        DBC-style start bit (LSB for Intel, MSB for Motorola).
    bit_length:
        Number of raw bits, 1..64.
    byte_order:
        ``"intel"`` or ``"motorola"``.
    signed:
        Two's-complement interpretation of the raw value.
    scale, offset:
        Linear mapping raw -> physical.
    value_table:
        Optional mapping of raw integer values to string labels
        (categorical signals). When set, decode returns the label and
        encode accepts either the label or the raw integer.
    """

    start_bit: int
    bit_length: int
    byte_order: str = INTEL
    signed: bool = False
    scale: float = 1.0
    offset: float = 0.0
    value_table: tuple = field(default_factory=tuple)  # ((raw, label), ...)

    def __post_init__(self):
        if not 1 <= self.bit_length <= 64:
            raise CodecError("bit_length must be in 1..64")
        if self.byte_order not in (INTEL, MOTOROLA):
            raise CodecError("byte_order must be 'intel' or 'motorola'")
        if self.start_bit < 0:
            raise CodecError("start_bit must be non-negative")
        if self.scale == 0:
            raise CodecError("scale must be non-zero")

    @classmethod
    def from_bit_positions(cls, positions, byte_order=INTEL, **kwargs):
        """Build an encoding from explicit bit positions.

        *positions* lists absolute payload bit positions in significance
        order (least significant first), as :meth:`bit_positions`
        returns them. The DBC start bit is derived per byte order (LSB
        for Intel, MSB for Motorola) and the result is verified to walk
        exactly the given positions -- a gap or an order inconsistent
        with *byte_order* raises :class:`CodecError`.
        """
        positions = list(positions)
        if not positions:
            raise CodecError("positions must be non-empty")
        start_bit = positions[0] if byte_order == INTEL else positions[-1]
        encoding = cls(
            start_bit=start_bit,
            bit_length=len(positions),
            byte_order=byte_order,
            **kwargs
        )
        if encoding.bit_positions() != positions:
            raise CodecError(
                "bit positions {} are not a contiguous {} layout".format(
                    positions, byte_order
                )
            )
        return encoding

    # -- geometry ----------------------------------------------------------
    def bit_positions(self):
        """Absolute payload bit positions, least-significant first."""
        if self.byte_order == INTEL:
            return _intel_bit_positions(self.start_bit, self.bit_length)
        return _motorola_bit_positions(self.start_bit, self.bit_length)

    def byte_span(self):
        """(first_byte, last_byte) touched by this signal, inclusive."""
        positions = self.bit_positions()
        return min(positions) // 8, max(positions) // 8

    def required_payload_length(self):
        """Minimum payload length in bytes to hold this signal."""
        return self.byte_span()[1] + 1

    # -- raw <-> bytes -------------------------------------------------------
    def extract_raw(self, payload):
        """Read the raw unsigned-or-signed integer from *payload*."""
        if len(payload) < self.required_payload_length():
            raise ShortPayloadError(
                "payload of {} bytes too short for signal spanning byte {}".format(
                    len(payload), self.byte_span()[1]
                )
            )
        raw = 0
        for significance, position in enumerate(self.bit_positions()):
            bit = (payload[position // 8] >> (position % 8)) & 1
            raw |= bit << significance
        if self.signed and raw >= 1 << (self.bit_length - 1):
            raw -= 1 << self.bit_length
        return raw

    def insert_raw(self, payload, raw):
        """Write a raw integer into *payload* (a bytearray), in place."""
        lo, hi = self._raw_bounds()
        if not lo <= raw <= hi:
            raise CodecError(
                "raw value {} out of range [{}, {}] for {}-bit signal".format(
                    raw, lo, hi, self.bit_length
                )
            )
        if raw < 0:
            raw += 1 << self.bit_length
        if len(payload) < self.required_payload_length():
            raise CodecError("payload too short for signal")
        for significance, position in enumerate(self.bit_positions()):
            byte_index, in_byte = position // 8, position % 8
            if (raw >> significance) & 1:
                payload[byte_index] |= 1 << in_byte
            else:
                payload[byte_index] &= ~(1 << in_byte) & 0xFF

    def _raw_bounds(self):
        if self.signed:
            half = 1 << (self.bit_length - 1)
            return -half, half - 1
        return 0, (1 << self.bit_length) - 1

    # -- compiled fast paths ---------------------------------------------------
    def compile_raw_extractor(self):
        """Build a closure equivalent to :meth:`extract_raw`.

        All spec-derived geometry (bit positions, spans, masks) is
        hoisted out of the per-payload path: both byte orders read
        their bits as one contiguous run of an ``int.from_bytes``
        integer -- little-endian for Intel, big-endian for Motorola
        (the sawtooth walk is exactly descending big-endian
        significance). The engine's columnar batch kernels use this to
        decode whole partitions without re-deriving the layout per row.
        """
        length = self.bit_length
        mask = (1 << length) - 1
        required = self.required_payload_length()
        span_last = self.byte_span()[1]
        signed = self.signed
        half = 1 << (length - 1)
        full = 1 << length
        short = (
            "payload of {} bytes too short for signal spanning byte {}"
        )
        if self.byte_order == INTEL:
            shift = self.start_bit

            def extract(payload):
                if len(payload) < required:
                    raise ShortPayloadError(
                        short.format(len(payload), span_last)
                    )
                raw = (int.from_bytes(payload, "little") >> shift) & mask
                if signed and raw >= half:
                    raw -= full
                return raw

            return extract

        byte_index = self.start_bit // 8
        in_byte = self.start_bit % 8

        def extract(payload):
            if len(payload) < required:
                raise ShortPayloadError(short.format(len(payload), span_last))
            shift = 8 * (len(payload) - 1 - byte_index) + in_byte - length + 1
            raw = (int.from_bytes(payload, "big") >> shift) & mask
            if signed and raw >= half:
                raw -= full
            return raw

        return extract

    def compile_decoder(self):
        """Build a closure equivalent to :meth:`decode`.

        The value table, the linear mapping and the int-coercion
        decision are resolved once instead of per payload.
        """
        extract = self.compile_raw_extractor()
        if self.value_table:
            table = dict(self.value_table)

            def decode(payload):
                raw = extract(payload)
                return table.get(raw, "raw_{}".format(raw))

            return decode
        scale, offset = self.scale, self.offset
        if scale == int(scale) and offset == int(offset):

            def decode(payload):
                physical = extract(payload) * scale + offset
                if float(physical).is_integer():
                    return int(physical)
                return physical

            return decode

        def decode(payload):
            return extract(payload) * scale + offset

        return decode

    # -- physical <-> raw ------------------------------------------------------
    def decode(self, payload):
        """Payload bytes -> physical value (float, int or label)."""
        raw = self.extract_raw(payload)
        if self.value_table:
            table = dict(self.value_table)
            return table.get(raw, "raw_{}".format(raw))
        physical = raw * self.scale + self.offset
        if self.scale == int(self.scale) and self.offset == int(self.offset):
            return int(physical) if float(physical).is_integer() else physical
        return physical

    def encode(self, payload, value, clamp=False):
        """Physical value (or label for categorical) -> payload bits.

        With ``clamp=True`` out-of-range raw values saturate at the
        encoding bounds, the way ECUs transmit out-of-range physical
        values; otherwise they raise :class:`CodecError`.
        """
        if self.value_table:
            if isinstance(value, str):
                reverse = {label: raw for raw, label in self.value_table}
                if value not in reverse:
                    raise CodecError(
                        "label {!r} not in value table {}".format(
                            value, [l for _r, l in self.value_table]
                        )
                    )
                raw = reverse[value]
            else:
                raw = int(value)
        else:
            raw = int(round((value - self.offset) / self.scale))
        if clamp:
            lo, hi = self._raw_bounds()
            raw = min(max(raw, lo), hi)
        self.insert_raw(payload, raw)
        return payload

    def physical_bounds(self):
        """(min, max) physical values representable by this encoding."""
        lo, hi = self._raw_bounds()
        a = lo * self.scale + self.offset
        b = hi * self.scale + self.offset
        return (min(a, b), max(a, b))


def overlaps(encoding_a, encoding_b):
    """True if two encodings share any payload bit."""
    return bool(set(encoding_a.bit_positions()) & set(encoding_b.bit_positions()))
