"""Protocol-independent frame model.

Every protocol module produces :class:`Frame` objects; the trace recorder
(`repro.vehicle.recorder`) turns them into the paper's byte tuples
``k_b = (t, l, b_id, m_id, m_info)`` (Sec. 2). ``m_info`` carries the
protocol-specific header fields needed for protocol-specific translation
(e.g. the CAN DLC, the SOME/IP message type).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Frame:
    """One recorded frame on an in-vehicle channel.

    Attributes
    ----------
    timestamp:
        Recording time in seconds.
    channel:
        Channel identifier ``b_id`` (e.g. ``"FC"`` for FA-CAN).
    protocol:
        Protocol name: ``"CAN"``, ``"LIN"``, ``"SOMEIP"`` or ``"FLEXRAY"``.
    message_id:
        Unique message identifier ``m_id`` within the channel.
    payload:
        Raw payload bytes ``l``.
    info:
        Protocol-specific header fields ``m_info``.
    """

    timestamp: float
    channel: str
    protocol: str
    message_id: int
    payload: bytes
    info: tuple = field(default_factory=tuple)  # ((key, value), ...)

    def info_dict(self):
        return dict(self.info)

    def to_byte_record(self):
        """The paper's ``k_b = (t, l, b_id, m_id, m_info)`` tuple."""
        m_info = (("protocol", self.protocol),) + self.info
        return (
            self.timestamp,
            bytes(self.payload),
            self.channel,
            self.message_id,
            m_info,
        )


BYTE_RECORD_COLUMNS = ("t", "l", "b_id", "m_id", "m_info")


def frame_from_byte_record(record):
    """Rebuild a :class:`Frame` from a ``k_b`` tuple (inverse mapping)."""
    t, payload, b_id, m_id, m_info = record
    info = tuple(kv for kv in m_info if kv[0] != "protocol")
    protocol = dict(m_info).get("protocol", "CAN")
    return Frame(t, b_id, protocol, m_id, bytes(payload), info)
