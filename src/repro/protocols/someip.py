"""SOME/IP (Scalable service-Oriented MiddlewarE over IP) framing.

Implements the 16-byte SOME/IP header (service id, method id, length,
client id, session id, protocol/interface versions, message type, return
code) plus the *conditional payload* layout the paper singles out:
"rules where values of preceding bytes define the presence of a signal
type in succeeding bytes" (Sec. 3.2). Optional payload sections are
governed by a presence bitmask in the first payload byte; interpretation
rules must evaluate the mask before locating a signal's bytes.

The message identifier used as ``m_id`` in traces is the 32-bit
``(service_id << 16) | method_id``, matching AUTOSAR's message id.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.protocols.frames import Frame
from repro.protocols.signalcodec import ShortPayloadError

PROTOCOL = "SOMEIP"

HEADER_LENGTH = 16
PROTOCOL_VERSION = 0x01

#: SOME/IP message types (subset).
REQUEST = 0x00
REQUEST_NO_RETURN = 0x01
NOTIFICATION = 0x02
RESPONSE = 0x80
ERROR = 0x81

_VALID_TYPES = frozenset({REQUEST, REQUEST_NO_RETURN, NOTIFICATION, RESPONSE, ERROR})

E_OK = 0x00


class SomeIpError(ValueError):
    """Raised for malformed SOME/IP messages."""


def message_id(service_id, method_id):
    """32-bit message id from service and method ids."""
    if not 0 <= service_id <= 0xFFFF or not 0 <= method_id <= 0xFFFF:
        raise SomeIpError("service/method id out of 16-bit range")
    return (service_id << 16) | method_id


def split_message_id(mid):
    """Inverse of :func:`message_id`."""
    return (mid >> 16) & 0xFFFF, mid & 0xFFFF


@dataclass(frozen=True)
class SomeIpMessage:
    """A SOME/IP message with header fields and payload."""

    service_id: int
    method_id: int
    payload: bytes
    client_id: int = 0
    session_id: int = 1
    interface_version: int = 1
    message_type: int = NOTIFICATION
    return_code: int = E_OK

    def __post_init__(self):
        if self.message_type not in _VALID_TYPES:
            raise SomeIpError(
                "unknown message type {:#x}".format(self.message_type)
            )
        if not 0 <= self.session_id <= 0xFFFF:
            raise SomeIpError("session id out of range")
        message_id(self.service_id, self.method_id)  # validates ranges

    @property
    def message_id(self):
        return message_id(self.service_id, self.method_id)

    @property
    def length(self):
        """SOME/IP length field: bytes after the length field itself."""
        return 8 + len(self.payload)

    def serialize(self):
        """Wire format: 16-byte header followed by the payload."""
        return (
            struct.pack(
                ">HHIHHBBBB",
                self.service_id,
                self.method_id,
                self.length,
                self.client_id,
                self.session_id,
                PROTOCOL_VERSION,
                self.interface_version,
                self.message_type,
                self.return_code,
            )
            + self.payload
        )

    @classmethod
    def deserialize(cls, data):
        if len(data) < HEADER_LENGTH:
            raise SomeIpError("buffer shorter than SOME/IP header")
        (
            service_id,
            method_id,
            length,
            client_id,
            session_id,
            protocol_version,
            interface_version,
            message_type,
            return_code,
        ) = struct.unpack(">HHIHHBBBB", data[:HEADER_LENGTH])
        if protocol_version != PROTOCOL_VERSION:
            raise SomeIpError(
                "unsupported protocol version {:#x}".format(protocol_version)
            )
        payload_length = length - 8
        if payload_length < 0 or HEADER_LENGTH + payload_length > len(data):
            raise SomeIpError("length field inconsistent with buffer")
        return cls(
            service_id,
            method_id,
            bytes(data[HEADER_LENGTH : HEADER_LENGTH + payload_length]),
            client_id=client_id,
            session_id=session_id,
            interface_version=interface_version,
            message_type=message_type,
            return_code=return_code,
        )

    def to_frame(self, timestamp, channel):
        info = (
            ("message_type", self.message_type),
            ("session_id", self.session_id),
            ("client_id", self.client_id),
            ("interface_version", self.interface_version),
            ("return_code", self.return_code),
            ("length", self.length),
        )
        return Frame(
            timestamp,
            channel,
            PROTOCOL,
            self.message_id,
            bytes(self.payload),
            info,
        )


@dataclass(frozen=True)
class OptionalSection:
    """One presence-conditional section of a SOME/IP payload.

    The section's bytes exist only when bit ``mask_bit`` of the payload's
    first byte (the presence mask) is set. Sections are laid out in
    ``mask_bit`` order after the mask byte; a section's offset therefore
    depends on which earlier sections are present.
    """

    mask_bit: int
    length: int

    def __post_init__(self):
        if not 0 <= self.mask_bit <= 7:
            raise SomeIpError("mask bit must be 0..7")
        if self.length < 1:
            raise SomeIpError("section length must be positive")


@dataclass(frozen=True)
class ConditionalLayout:
    """Payload layout with a presence mask and optional sections.

    Byte 0 holds the presence bitmask. Sections follow in ascending
    ``mask_bit`` order, present sections only, concatenated densely.
    """

    sections: tuple = field(default_factory=tuple)

    def __post_init__(self):
        bits = [s.mask_bit for s in self.sections]
        if len(bits) != len(set(bits)):
            raise SomeIpError("duplicate mask bits in layout")
        if list(bits) != sorted(bits):
            raise SomeIpError("sections must be ordered by mask bit")

    def build_payload(self, present_sections):
        """Assemble a payload from {mask_bit: bytes} of present sections."""
        mask = 0
        body = b""
        for section in self.sections:
            if section.mask_bit in present_sections:
                data = present_sections[section.mask_bit]
                if len(data) != section.length:
                    raise SomeIpError(
                        "section {} expects {} bytes, got {}".format(
                            section.mask_bit, section.length, len(data)
                        )
                    )
                mask |= 1 << section.mask_bit
                body += bytes(data)
        return bytes([mask]) + body

    def section_offset(self, payload, mask_bit):
        """Byte offset of a section in *payload*, or None if absent.

        This is the data-dependent lookup the paper's ``u_info`` rules
        encode for SOME/IP: preceding bytes (the mask) decide both the
        presence and position of succeeding bytes.
        """
        if not payload:
            raise ShortPayloadError("empty payload has no presence mask")
        mask = payload[0]
        if not mask & (1 << mask_bit):
            return None
        offset = 1
        for section in self.sections:
            if section.mask_bit == mask_bit:
                return offset
            if mask & (1 << section.mask_bit):
                offset += section.length
        raise SomeIpError("mask bit {} not part of layout".format(mask_bit))

    def extract_section(self, payload, mask_bit):
        """Bytes of a section, or None if the presence bit is clear."""
        offset = self.section_offset(payload, mask_bit)
        if offset is None:
            return None
        for section in self.sections:
            if section.mask_bit == mask_bit:
                end = offset + section.length
                if end > len(payload):
                    raise ShortPayloadError("payload truncated inside section")
                return payload[offset:end]
        raise SomeIpError("mask bit {} not part of layout".format(mask_bit))


def frame_from_record(frame):
    """Recover a :class:`SomeIpMessage` from a recorded frame."""
    if frame.protocol != PROTOCOL:
        raise SomeIpError("frame is not SOME/IP but {}".format(frame.protocol))
    info = frame.info_dict()
    service_id, method_id = split_message_id(frame.message_id)
    return SomeIpMessage(
        service_id,
        method_id,
        frame.payload,
        client_id=info.get("client_id", 0),
        session_id=info.get("session_id", 1),
        interface_version=info.get("interface_version", 1),
        message_type=info.get("message_type", NOTIFICATION),
        return_code=info.get("return_code", E_OK),
    )
