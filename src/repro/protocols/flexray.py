"""FlexRay framing.

Implements the time-triggered FlexRay frame model at the level a trace
recorder sees: slot-addressed frames inside 64-cycle rounds on channel A
and/or B, a payload of up to 254 bytes (127 two-byte words), an 11-bit
header CRC and frame status flags. Slot scheduling (the static segment)
is modelled in :mod:`repro.vehicle.bus`; the slot id acts as ``m_id``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.protocols.frames import Frame

PROTOCOL = "FLEXRAY"

SLOT_ID_MAX = 2047
CYCLE_MAX = 63
MAX_PAYLOAD_WORDS = 127

CHANNEL_A = "A"
CHANNEL_B = "B"

#: Header CRC-11 polynomial (x^11+x^9+x^8+x^7+x^2+1) per FlexRay spec.
_CRC11_POLY = 0x385


class FlexRayError(ValueError):
    """Raised for malformed FlexRay frames."""


def header_crc(slot_id, payload_words, sync=False, startup=False):
    """CRC-11 over the header fields (sync, startup, slot id, length)."""
    bits = [int(sync), int(startup)]
    bits += [(slot_id >> i) & 1 for i in range(10, -1, -1)]
    bits += [(payload_words >> i) & 1 for i in range(6, -1, -1)]
    crc = 0x01A  # specified initialization vector
    for bit in bits:
        msb = (crc >> 10) & 1
        crc = (crc << 1) & 0x7FF
        if bit ^ msb:
            crc ^= _CRC11_POLY
    return crc


@dataclass(frozen=True)
class FlexRayFrame:
    """A FlexRay static- or dynamic-segment frame."""

    slot_id: int
    cycle: int
    payload: bytes
    fr_channel: str = CHANNEL_A
    sync: bool = False
    startup: bool = False
    null_frame: bool = False

    def __post_init__(self):
        if not 1 <= self.slot_id <= SLOT_ID_MAX:
            raise FlexRayError("slot id {} out of 1..2047".format(self.slot_id))
        if not 0 <= self.cycle <= CYCLE_MAX:
            raise FlexRayError("cycle {} out of 0..63".format(self.cycle))
        if len(self.payload) % 2:
            raise FlexRayError("FlexRay payload must be an even byte count")
        if len(self.payload) // 2 > MAX_PAYLOAD_WORDS:
            raise FlexRayError("payload exceeds 127 words")
        if self.fr_channel not in (CHANNEL_A, CHANNEL_B):
            raise FlexRayError("channel must be 'A' or 'B'")
        if self.startup and not self.sync:
            raise FlexRayError("startup frames must also be sync frames")

    @property
    def payload_words(self):
        return len(self.payload) // 2

    def crc(self):
        return header_crc(
            self.slot_id, self.payload_words, self.sync, self.startup
        )

    def to_frame(self, timestamp, channel):
        info = (
            ("cycle", self.cycle),
            ("fr_channel", self.fr_channel),
            ("payload_words", self.payload_words),
            ("header_crc", self.crc()),
            ("sync", self.sync),
            ("startup", self.startup),
            ("null_frame", self.null_frame),
        )
        return Frame(
            timestamp, channel, PROTOCOL, self.slot_id, bytes(self.payload), info
        )


def frame_from_record(frame):
    """Recover a :class:`FlexRayFrame`; verifies the header CRC."""
    if frame.protocol != PROTOCOL:
        raise FlexRayError("frame is not FlexRay but {}".format(frame.protocol))
    info = frame.info_dict()
    fr = FlexRayFrame(
        frame.message_id,
        info.get("cycle", 0),
        frame.payload,
        fr_channel=info.get("fr_channel", CHANNEL_A),
        sync=info.get("sync", False),
        startup=info.get("startup", False),
        null_frame=info.get("null_frame", False),
    )
    expected = info.get("header_crc")
    if expected is not None and expected != fr.crc():
        raise FlexRayError("header CRC mismatch")
    return fr
