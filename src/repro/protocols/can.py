"""CAN (Controller Area Network) framing.

Implements classic CAN data frames: 11-bit standard / 29-bit extended
identifiers, up to 8 payload bytes with a DLC field, plus the CRC-15
polynomial used on the wire (computed over id + DLC + data so corrupted
frames can be injected and detected in tests). In a recorded trace the
CAN identifier is the paper's ``m_id`` and the DLC is part of ``m_info``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.protocols.frames import Frame

PROTOCOL = "CAN"

STANDARD_ID_MAX = 0x7FF
EXTENDED_ID_MAX = 0x1FFFFFFF
MAX_PAYLOAD = 8

#: CRC-15-CAN polynomial x^15+x^14+x^10+x^8+x^7+x^4+x^3+1.
_CRC15_POLY = 0x4599


class CanError(ValueError):
    """Raised for malformed CAN frames."""


def crc15(data):
    """CRC-15-CAN over an iterable of bytes."""
    crc = 0
    for byte in data:
        for i in range(7, -1, -1):
            bit = (byte >> i) & 1
            msb = (crc >> 14) & 1
            crc = (crc << 1) & 0x7FFF
            if bit ^ msb:
                crc ^= _CRC15_POLY
    return crc


@dataclass(frozen=True)
class CanFrame:
    """A classic CAN data frame."""

    can_id: int
    payload: bytes
    extended: bool = False

    def __post_init__(self):
        limit = EXTENDED_ID_MAX if self.extended else STANDARD_ID_MAX
        if not 0 <= self.can_id <= limit:
            raise CanError(
                "CAN id {:#x} out of range for {} frame".format(
                    self.can_id, "extended" if self.extended else "standard"
                )
            )
        if len(self.payload) > MAX_PAYLOAD:
            raise CanError(
                "CAN payload of {} bytes exceeds maximum of 8".format(
                    len(self.payload)
                )
            )

    @property
    def dlc(self):
        return len(self.payload)

    def crc(self):
        """Frame CRC-15 over id, DLC and payload."""
        id_bytes = self.can_id.to_bytes(4, "big")
        return crc15(id_bytes + bytes([self.dlc]) + self.payload)

    def to_frame(self, timestamp, channel):
        """Wrap as a recorded :class:`~repro.protocols.frames.Frame`."""
        info = (
            ("dlc", self.dlc),
            ("extended", self.extended),
            ("crc", self.crc()),
        )
        return Frame(
            timestamp, channel, PROTOCOL, self.can_id, bytes(self.payload), info
        )


#: CAN FD DLC values 9..15 map to these payload lengths.
FD_DLC_LENGTHS = (12, 16, 20, 24, 32, 48, 64)
FD_MAX_PAYLOAD = 64

#: Valid CAN FD payload lengths: 0..8 plus the discrete FD sizes.
FD_VALID_LENGTHS = frozenset(range(9)) | frozenset(FD_DLC_LENGTHS)


def fd_dlc_for_length(length):
    """CAN FD DLC code for a payload length (must be a valid FD size)."""
    if 0 <= length <= 8:
        return length
    if length in FD_DLC_LENGTHS:
        return 9 + FD_DLC_LENGTHS.index(length)
    raise CanError(
        "CAN FD payload length {} is not encodable; valid lengths are "
        "0..8 and {}".format(length, list(FD_DLC_LENGTHS))
    )


def fd_length_for_dlc(dlc):
    """Payload length for a CAN FD DLC code 0..15."""
    if 0 <= dlc <= 8:
        return dlc
    if 9 <= dlc <= 15:
        return FD_DLC_LENGTHS[dlc - 9]
    raise CanError("CAN FD DLC {} out of range 0..15".format(dlc))


def fd_padded_length(length):
    """Smallest encodable CAN FD length >= *length* (frames are padded)."""
    if length > FD_MAX_PAYLOAD:
        raise CanError("payload of {} bytes exceeds CAN FD maximum".format(length))
    for candidate in sorted(FD_VALID_LENGTHS):
        if candidate >= length:
            return candidate
    raise CanError("unreachable")


@dataclass(frozen=True)
class CanFdFrame:
    """A CAN FD data frame: up to 64 payload bytes, discrete lengths.

    Payloads not matching an encodable length are rejected; use
    :func:`fd_padded_length` to pad first, as FD controllers do. The
    ``brs`` flag marks bit-rate switching for the data phase.
    """

    can_id: int
    payload: bytes
    extended: bool = False
    brs: bool = True

    def __post_init__(self):
        limit = EXTENDED_ID_MAX if self.extended else STANDARD_ID_MAX
        if not 0 <= self.can_id <= limit:
            raise CanError("CAN id {:#x} out of range".format(self.can_id))
        if len(self.payload) not in FD_VALID_LENGTHS:
            raise CanError(
                "CAN FD payload length {} not encodable (pad to {})".format(
                    len(self.payload), fd_padded_length(len(self.payload))
                )
            )

    @property
    def dlc(self):
        return fd_dlc_for_length(len(self.payload))

    def crc(self):
        """Frame CRC-15 over id, DLC code and payload (simplified; real
        FD uses CRC-17/21 -- the detection property is what matters)."""
        id_bytes = self.can_id.to_bytes(4, "big")
        return crc15(id_bytes + bytes([self.dlc]) + self.payload)

    def to_frame(self, timestamp, channel):
        info = (
            ("dlc", self.dlc),
            ("extended", self.extended),
            ("fd", True),
            ("brs", self.brs),
            ("crc", self.crc()),
        )
        return Frame(
            timestamp, channel, PROTOCOL, self.can_id, bytes(self.payload), info
        )


def frame_from_record(frame):
    """Recover a :class:`CanFrame` from a recorded frame; verifies DLC/CRC."""
    if frame.protocol != PROTOCOL:
        raise CanError("frame is not CAN but {}".format(frame.protocol))
    info = frame.info_dict()
    if info.get("fd"):
        dlc = info.get("dlc", fd_dlc_for_length(len(frame.payload)))
        if fd_length_for_dlc(dlc) != len(frame.payload):
            raise CanError(
                "FD DLC {} does not match payload length {}".format(
                    dlc, len(frame.payload)
                )
            )
        fd = CanFdFrame(
            frame.message_id,
            frame.payload,
            info.get("extended", False),
            info.get("brs", True),
        )
        expected = info.get("crc")
        if expected is not None and expected != fd.crc():
            raise CanError("CRC mismatch on FD frame")
        return fd
    dlc = info.get("dlc", len(frame.payload))
    if dlc != len(frame.payload):
        raise CanError(
            "DLC {} does not match payload length {}".format(
                dlc, len(frame.payload)
            )
        )
    can = CanFrame(frame.message_id, frame.payload, info.get("extended", False))
    expected = info.get("crc")
    if expected is not None and expected != can.crc():
        raise CanError(
            "CRC mismatch: header says {:#x}, payload gives {:#x}".format(
                expected, can.crc()
            )
        )
    return can
