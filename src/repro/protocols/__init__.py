"""Protocol codecs for the in-vehicle network substrate.

Implements the four protocol families the paper's traces mix (CAN, LIN,
SOME/IP, FlexRay -- see Table 1) plus the bit-level signal codec used to
pack physical values into frame payloads.
"""

from repro.protocols import can, flexray, lin, someip
from repro.protocols.frames import (
    BYTE_RECORD_COLUMNS,
    Frame,
    frame_from_byte_record,
)
from repro.protocols.signalcodec import (
    INTEL,
    MOTOROLA,
    CodecError,
    ShortPayloadError,
    SignalEncoding,
    overlaps,
)

__all__ = [
    "can",
    "lin",
    "someip",
    "flexray",
    "Frame",
    "frame_from_byte_record",
    "BYTE_RECORD_COLUMNS",
    "SignalEncoding",
    "CodecError",
    "ShortPayloadError",
    "INTEL",
    "MOTOROLA",
    "overlaps",
]
