"""LIN (Local Interconnect Network) framing.

Implements LIN 2.x frames: 6-bit frame identifiers with the two parity
bits of the protected identifier, up to 8 data bytes and both checksum
models (classic: data only; enhanced: protected id + data). The paper's
Table 1 extracts the wiper type from a K-LIN channel; this module makes
that channel real.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.protocols.frames import Frame

PROTOCOL = "LIN"

FRAME_ID_MAX = 0x3F
MAX_PAYLOAD = 8

CLASSIC = "classic"
ENHANCED = "enhanced"


class LinError(ValueError):
    """Raised for malformed LIN frames."""


def protected_id(frame_id):
    """Frame id with the two LIN parity bits (P0 at bit 6, P1 at bit 7)."""
    if not 0 <= frame_id <= FRAME_ID_MAX:
        raise LinError("LIN frame id {:#x} out of range".format(frame_id))
    b = [(frame_id >> i) & 1 for i in range(6)]
    p0 = b[0] ^ b[1] ^ b[2] ^ b[4]
    p1 = 1 - (b[1] ^ b[3] ^ b[4] ^ b[5])
    return frame_id | (p0 << 6) | (p1 << 7)


def checksum(data, frame_id=None, model=ENHANCED):
    """LIN checksum: inverted 8-bit sum with carry wrap-around."""
    total = 0
    if model == ENHANCED:
        if frame_id is None:
            raise LinError("enhanced checksum requires the frame id")
        total = protected_id(frame_id)
    elif model != CLASSIC:
        raise LinError("unknown checksum model {!r}".format(model))
    for byte in data:
        total += byte
        if total > 0xFF:
            total -= 0xFF
    return (~total) & 0xFF


@dataclass(frozen=True)
class LinFrame:
    """A LIN 2.x frame."""

    frame_id: int
    payload: bytes
    checksum_model: str = ENHANCED

    def __post_init__(self):
        if not 0 <= self.frame_id <= FRAME_ID_MAX:
            raise LinError("LIN frame id {:#x} out of range".format(self.frame_id))
        if not 1 <= len(self.payload) <= MAX_PAYLOAD:
            raise LinError("LIN payload must be 1..8 bytes")
        if self.checksum_model not in (CLASSIC, ENHANCED):
            raise LinError(
                "unknown checksum model {!r}".format(self.checksum_model)
            )

    @property
    def pid(self):
        return protected_id(self.frame_id)

    def frame_checksum(self):
        return checksum(
            self.payload,
            frame_id=self.frame_id,
            model=self.checksum_model,
        )

    def to_frame(self, timestamp, channel):
        info = (
            ("pid", self.pid),
            ("checksum", self.frame_checksum()),
            ("checksum_model", self.checksum_model),
        )
        return Frame(
            timestamp, channel, PROTOCOL, self.frame_id, bytes(self.payload), info
        )


def frame_from_record(frame):
    """Recover a :class:`LinFrame`; verifies parity and checksum."""
    if frame.protocol != PROTOCOL:
        raise LinError("frame is not LIN but {}".format(frame.protocol))
    info = frame.info_dict()
    lin = LinFrame(
        frame.message_id, frame.payload, info.get("checksum_model", ENHANCED)
    )
    if "pid" in info and info["pid"] != lin.pid:
        raise LinError(
            "protected id mismatch: recorded {:#x}, computed {:#x}".format(
                info["pid"], lin.pid
            )
        )
    if "checksum" in info and info["checksum"] != lin.frame_checksum():
        raise LinError("checksum mismatch")
    return lin
