"""Compiled partition kernels: codegen for fused narrow-step chains.

The interpreted execution path runs every narrow stage as a tree of
bound closures dispatched per row per step: ``FilterStep`` and
``ProjectStep`` each re-materialize the partition list, and every
``BoundBinary`` costs a Python call frame per row. For the paper's hot
loops -- preselection filters, the u1/u2 interpretation maps, reduction
projections -- that dispatch overhead dominates the actual work.

This module lowers a fused chain of narrow steps (Filter -> Project ->
FlatMap, in any order) to a single generated per-partition Python loop:

* bound expressions become inline Python expressions over the row tuple
  (``r[1] == _c0 and r[2] in _c1``) with literals, frozensets and
  user callables hoisted into the kernel's globals as ``_c<n>``
  constants;
* a whole step chain becomes one ``for`` loop with ``continue`` guards
  for filters, tuple displays for projections and nested loops for
  flat-maps, so a partition is traversed once with zero intermediate
  lists;
* ``MapPartitionStep`` (an opaque partition-level callable) splits the
  chain into separately-fused segments.

Generated source is *structural*: constant values never appear in it,
so two plans that differ only in literals share one compiled code
object. The process-local code cache is keyed by the source string --
equivalently by (structural hash, schema), since column indices are
part of the source. Workers receive the picklable
:class:`CompiledPartitionTask` spec (the original steps) and compile
lazily on first use; code objects are never pickled.

Semantics match the interpreted path exactly (the differential fuzz
oracle compares the two on every case), with one documented relaxation:
a compiled flat-map streams each produced row through the downstream
steps immediately instead of materializing the whole step output first,
which can reorder *exceptions* (never rows) relative to the
interpreter.

Columnar batch kernels
----------------------

On top of the row kernels, a pure Filter/Project chain can lower to a
*columnar* kernel that runs over the column buffers of a
:class:`~repro.engine.columnar.ColumnarPartition` instead of row
tuples: filters become selection masks applied to every column with
``itertools.compress``, pass-through projection columns are zero-copy
buffer references, and computed columns are single list comprehensions
zipping exactly the columns the expression reads. Row tuples are never
materialized between steps; the task transposes back to rows only at
its output boundary (wide stages, fault poisoning and the differential
oracle all keep seeing row lists).

Semantics again match the interpreted path row-for-row -- masks and
comprehensions evaluate the same expression on the same surviving rows
with the same short-circuiting -- with the analogous documented
relaxation: a columnar project evaluates expression-major (whole column
at a time) instead of row-major, which can reorder *exceptions* (never
rows) between two output expressions of one projection.

Fallback: set ``REPRO_KERNELS=interpret`` in the environment (or pass
``compile_kernels=False`` to any executor) to restore the interpreted
path; lowering failures fall back per task and are counted as
``executor.kernel_fallbacks``. ``REPRO_COLUMNAR=off`` (or
``columnar_kernels=False``) disables only the columnar layer; chains it
cannot lower (flat-maps, partition maps) fall back to the row kernels
per task, counted as ``executor.columnar_fallbacks``.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from itertools import compress

from repro.engine.columnar import ColumnarPartition, columns_to_rows

from repro.engine.expressions import (
    BoundAnd,
    BoundApply,
    BoundBinary,
    BoundColumn,
    BoundInSet,
    BoundLiteral,
    BoundOr,
    BoundRowApply,
    BoundUnary,
)
from repro.engine.operations import (
    FilterStep,
    FlatMapStep,
    MapPartitionStep,
    ProjectStep,
)
from repro.engine.optimizer import ComposedApply, ComposedRowApply
from repro.obs import stopwatch

#: Environment variable selecting the default execution path.
#: ``compiled`` (default) generates kernels; ``interpret`` restores the
#: closure interpreter everywhere.
KERNELS_ENV = "REPRO_KERNELS"

#: Environment variable selecting the columnar batch-kernel layer.
#: ``columnar`` (default) lowers pure Filter/Project chains to column
#: kernels; ``off`` restores row kernels everywhere.
COLUMNAR_ENV = "REPRO_COLUMNAR"

#: Environment variable selecting the columnar wide-stage exchange:
#: whether partitions cross broadcast-join and shuffle boundaries as
#: :class:`~repro.engine.columnar.ColumnarPartition` buffers. ``off``
#: restores the row exchange; unset defers to the executor's default
#: (columnar kernels enabled implies columnar exchange).
EXCHANGE_ENV = "REPRO_COLUMNAR_EXCHANGE"

#: Python operator symbols for :data:`repro.engine.expressions._BINARY_OPS`.
_BINARY_SYMBOLS = {
    "eq": "==",
    "ne": "!=",
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
    "add": "+",
    "sub": "-",
    "mul": "*",
    "div": "/",
}

#: Expression trees nested deeper than this are not inlined (CPython's
#: parser has a finite stack for nested parentheses); the task falls
#: back to the interpreter instead.
_MAX_EXPR_DEPTH = 60


class CodegenError(Exception):
    """A step chain (or expression) that cannot be lowered to source."""


def kernels_enabled(value=None):
    """Resolve the compiled-kernels default from the environment.

    *value* overrides the environment when given (the executors pass
    their constructor argument through here).
    """
    if value is None:
        value = os.environ.get(KERNELS_ENV, "compiled")
    off = ("interpret", "interpreted", "off", "0", "false", "no")
    return str(value).strip().lower() not in off


def columnar_enabled(value=None):
    """Resolve the columnar-kernels default from the environment.

    *value* overrides the environment when given (the executors pass
    their constructor argument through here).
    """
    if value is None:
        value = os.environ.get(COLUMNAR_ENV, "columnar")
    off = ("row", "rows", "off", "0", "false", "no")
    return str(value).strip().lower() not in off


def exchange_enabled(value=None, default=True):
    """Resolve the columnar wide-stage exchange flag.

    *value* overrides everything when given; otherwise the
    ``REPRO_COLUMNAR_EXCHANGE`` environment variable decides, and an
    unset environment resolves to *default* (executors pass their
    kernel-layer default through here, so a row-kernel executor keeps a
    row exchange unless explicitly asked otherwise).
    """
    if value is None:
        value = os.environ.get(EXCHANGE_ENV)
        if value is None:
            return bool(default)
    off = ("row", "rows", "off", "0", "false", "no")
    return str(value).strip().lower() not in off


# ---------------------------------------------------------------------------
# Expression lowering
# ---------------------------------------------------------------------------


class _Lowering:
    """Accumulates hoisted constants while an expression tree is lowered."""

    def __init__(self):
        self.constants = []

    def const(self, value):
        name = "_c{}".format(len(self.constants))
        self.constants.append(value)
        return name


class _ElementScope:
    """Column-element naming for the columnar lowering.

    In element mode a column reference renders as a per-element loop
    variable ``_v<i>`` instead of a row subscript; the scope records
    which columns an expression actually reads so its comprehension
    zips exactly those buffers. Expressions that need the whole row
    (``BoundRowApply``, opaque callables) read every column.
    """

    def __init__(self, width):
        self.width = width
        self.used = set()

    def col_ref(self, index):
        self.used.add(index)
        return "_v{}".format(index)

    def row_ref(self):
        if self.width == 0:
            return "()"
        self.used.update(range(self.width))
        return "({},)".format(
            ", ".join("_v{}".format(i) for i in range(self.width))
        )


def lower_expression(expr, row, ctx, depth=0, scope=None):
    """Lower one bound expression to a Python source expression.

    *row* is the source name of the row tuple; constant values are
    hoisted into *ctx*. Unknown bound-expression types are lowered as an
    opaque call of the object itself (``_c3(_r0)``), which is exactly
    the interpreter's semantics -- lowering is therefore total over
    every callable bound expression, present or future.

    With a *scope* (columnar element mode) column references render as
    per-element variables (``_v2``) and whole-row consumers as a tuple
    display over every column; *row* is unused then.
    """
    if depth > _MAX_EXPR_DEPTH:
        raise CodegenError("expression nests too deeply to inline")
    d = depth + 1

    def col_ref(index):
        if scope is None:
            return "{}[{}]".format(row, index)
        return scope.col_ref(index)

    def row_ref():
        if scope is None:
            return row
        return scope.row_ref()

    if isinstance(expr, BoundColumn):
        return col_ref(expr.index)
    if isinstance(expr, BoundLiteral):
        return ctx.const(expr.value)
    if isinstance(expr, BoundAnd):
        return "(bool({}) and bool({}))".format(
            lower_expression(expr.left, row, ctx, d, scope),
            lower_expression(expr.right, row, ctx, d, scope),
        )
    if isinstance(expr, BoundOr):
        return "(bool({}) or bool({}))".format(
            lower_expression(expr.left, row, ctx, d, scope),
            lower_expression(expr.right, row, ctx, d, scope),
        )
    if isinstance(expr, BoundBinary):
        symbol = _BINARY_SYMBOLS.get(expr.op)
        if symbol is None:
            raise CodegenError("unknown binary op {!r}".format(expr.op))
        return "({} {} {})".format(
            lower_expression(expr.left, row, ctx, d, scope),
            symbol,
            lower_expression(expr.right, row, ctx, d, scope),
        )
    if isinstance(expr, BoundUnary):
        inner = lower_expression(expr.operand, row, ctx, d, scope)
        if expr.op == "not":
            return "(not {})".format(inner)
        if expr.op == "is_null":
            return "({} is None)".format(inner)
        if expr.op == "is_not_null":
            return "({} is not None)".format(inner)
        raise CodegenError("unknown unary op {!r}".format(expr.op))
    if isinstance(expr, BoundInSet):
        return "({} in {})".format(
            lower_expression(expr.operand, row, ctx, d, scope),
            ctx.const(expr.values),
        )
    if isinstance(expr, BoundApply):
        args = ", ".join(col_ref(i) for i in expr.indices)
        return "{}({})".format(ctx.const(expr.func), args)
    if isinstance(expr, ComposedApply):
        args = ", ".join(
            lower_expression(p, row, ctx, d, scope) for p in expr.producers
        )
        return "{}({})".format(ctx.const(expr.func), args)
    if isinstance(expr, BoundRowApply):
        return "{}(dict(zip({}, {})))".format(
            ctx.const(expr.func), ctx.const(expr.names), row_ref()
        )
    if isinstance(expr, ComposedRowApply):
        if expr.producers:
            values = "({},)".format(
                ", ".join(
                    lower_expression(p, row, ctx, d, scope)
                    for p in expr.producers
                )
            )
        else:
            values = "()"
        return "{}(dict(zip({}, {})))".format(
            ctx.const(expr.func), ctx.const(expr.names), values
        )
    # Unknown bound expression: call the object itself, which is the
    # interpreter's contract for any bound expression.
    return "{}({})".format(ctx.const(expr), row_ref())


# ---------------------------------------------------------------------------
# Step-chain lowering
# ---------------------------------------------------------------------------


def lower_segment(steps):
    """Lower one fuseable run of steps to ``(source, constants)``.

    The generated function is named ``_kernel`` and maps a list of row
    tuples to a list of row tuples in one pass.
    """
    ctx = _Lowering()
    lines = [
        "def _kernel(_rows):",
        "    _out = []",
        "    _append = _out.append",
        "    for _r0 in _rows:",
    ]
    var = "_r0"
    seq = 0
    indent = 2
    for step in steps:
        pad = "    " * indent
        if isinstance(step, FilterStep):
            predicate = lower_expression(step.predicate, var, ctx)
            lines.append(pad + "if not ({}):".format(predicate))
            lines.append(pad + "    continue")
        elif isinstance(step, ProjectStep):
            seq += 1
            new = "_r{}".format(seq)
            if step.exprs:
                items = ", ".join(
                    lower_expression(e, var, ctx) for e in step.exprs
                )
                lines.append(pad + "{} = ({},)".format(new, items))
            else:
                lines.append(pad + "{} = ()".format(new))
            var = new
        elif isinstance(step, FlatMapStep):
            seq += 1
            new = "_r{}".format(seq)
            lines.append(
                pad + "for {} in {}({}):".format(new, ctx.const(step.func), var)
            )
            indent += 1
            var = new
        else:
            raise CodegenError(
                "step {!r} is not fuseable".format(type(step).__name__)
            )
    lines.append("    " * indent + "_append({})".format(var))
    lines.append("    return _out")
    return "\n".join(lines) + "\n", ctx.constants


def _column_source(expr, ctx, width):
    """Source expression producing one whole output column for *expr*.

    Pass-through columns are zero-copy buffer references and literals
    replicate without a loop. Applies whose callable publishes a
    ``batch_call`` method are lowered as ONE whole-column call --
    ``batch_call`` receives the argument columns and must return the
    list ``[func(*cells) for cells in zip(*columns)]``; domain layers
    use it to hoist per-row setup out of the loop (see
    ``repro.core.interpretation``). Everything else evaluates as an
    element comprehension over exactly the columns it reads.
    """
    if isinstance(expr, BoundColumn):
        return "_cols[{}]".format(expr.index)
    if isinstance(expr, BoundLiteral):
        return "[{}] * _n".format(ctx.const(expr.value))
    batch = getattr(getattr(expr, "func", None), "batch_call", None)
    if callable(batch):
        if isinstance(expr, BoundApply):
            args = ", ".join("_cols[{}]".format(i) for i in expr.indices)
            return "{}({})".format(ctx.const(batch), args)
        if isinstance(expr, ComposedApply):
            args = ", ".join(
                _column_source(p, ctx, width) for p in expr.producers
            )
            return "{}({})".format(ctx.const(batch), args)
    scope = _ElementScope(width)
    source = lower_expression(expr, None, ctx, scope=scope)
    return _element_comprehension(source, sorted(scope.used))


def _element_comprehension(source, used):
    """One list comprehension evaluating *source* per element.

    *used* is the sorted set of column indices the expression reads:
    zero columns iterate ``range(_n)`` (the expression is still
    evaluated once per row, matching the interpreter), one column skips
    the ``zip``.
    """
    if not used:
        return "[{} for _i in range(_n)]".format(source)
    if len(used) == 1:
        index = used[0]
        return "[{} for _v{} in _cols[{}]]".format(source, index, index)
    variables = ", ".join("_v{}".format(i) for i in used)
    columns = ", ".join("_cols[{}]".format(i) for i in used)
    return "[{} for {} in zip({})]".format(source, variables, columns)


def lower_columnar_segment(steps, width):
    """Lower a pure Filter/Project chain to a columnar batch kernel.

    The generated ``_ckernel(_cols, _n)`` maps (column buffers, row
    count) to (column buffers, row count) without ever materializing a
    row tuple: filters build a selection mask and compress every live
    column (skipped entirely when the mask is all-true); projections
    reuse input buffers for pass-through columns, replicate literals
    and compute everything else as one comprehension over exactly the
    columns it reads. *width* is the input column count.

    Raises :class:`CodegenError` for chains containing anything but
    Filter/Project steps (flat-maps expand rows, partition maps are
    opaque barriers -- both stay on the row path).
    """
    ctx = _Lowering()
    lines = ["def _ckernel(_cols, _n):"]
    current_width = width
    for step in steps:
        if isinstance(step, FilterStep):
            scope = _ElementScope(current_width)
            predicate = lower_expression(
                step.predicate, None, ctx, scope=scope
            )
            mask = _element_comprehension(predicate, sorted(scope.used))
            lines.append("    if _n:")
            lines.append("        _mask = {}".format(mask))
            lines.append("        if not all(_mask):")
            lines.append(
                "            _cols = "
                "[list(_compress(_c, _mask)) for _c in _cols]"
            )
            if current_width:
                # Compressed columns are lists; their C-level length is
                # the surviving row count.
                lines.append("            _n = len(_cols[0])")
            else:
                lines.append("            _n = sum(1 for _m in _mask if _m)")
        elif isinstance(step, ProjectStep):
            items = [
                _column_source(expr, ctx, current_width)
                for expr in step.exprs
            ]
            # The list display evaluates against the *old* _cols before
            # the rebinding, so pass-through refs stay valid.
            lines.append("    _cols = [")
            for item in items:
                lines.append("        {},".format(item))
            lines.append("    ]")
            current_width = len(step.exprs)
        else:
            raise CodegenError(
                "step {!r} is not columnar-fuseable".format(
                    type(step).__name__
                )
            )
    lines.append("    return _cols, _n")
    return "\n".join(lines) + "\n", ctx.constants


def _segment_chain(steps):
    """Split *steps* into fuseable runs and partition-level barriers.

    Returns a list of ``("fused", (steps...))`` / ``("step", step)``
    entries; ``MapPartitionStep`` (and any unknown step type) is a
    barrier run as-is between generated kernels.
    """
    chain = []
    run = []
    for step in steps:
        if isinstance(step, (FilterStep, ProjectStep, FlatMapStep)):
            run.append(step)
            continue
        if run:
            chain.append(("fused", tuple(run)))
            run = []
        chain.append(("step", step))
    if run:
        chain.append(("fused", tuple(run)))
    return chain


# ---------------------------------------------------------------------------
# Process-local compile cache
# ---------------------------------------------------------------------------

_CODE_CACHE = {}  # source string -> code object


def clear_kernel_cache():
    """Drop every cached code object (test isolation helper)."""
    _CODE_CACHE.clear()


def kernel_cache_size():
    """Number of distinct kernel code objects compiled in this process."""
    return len(_CODE_CACHE)


def _compile_source(source, registry=None):
    """Compile *source* through the process-local structural cache.

    With a *registry* (the owning executor's ``obs``), cache misses
    count as ``executor.kernels_compiled`` (plus a
    ``executor.kernel_compile_seconds`` observation) and hits as
    ``executor.kernel_cache_hits``. Workers compile without a registry;
    their compiles are invisible to driver metrics by design.
    """
    code = _CODE_CACHE.get(source)
    if code is not None:
        if registry is not None:
            registry.inc("executor.kernel_cache_hits")
        return code
    with stopwatch() as watch:
        code = compile(source, "<repro-kernel>", "exec")
    _CODE_CACHE[source] = code
    if registry is not None:
        registry.inc("executor.kernels_compiled")
        registry.observe("executor.kernel_compile_seconds", watch.seconds)
    return code


def _bind_kernel(code, constants, name="_kernel"):
    """Materialize the kernel function with its hoisted constants."""
    namespace = {"_c{}".format(i): v for i, v in enumerate(constants)}
    namespace["_compress"] = compress
    exec(code, namespace)  # noqa: S102 -- source is generated, not user input
    return namespace[name]


def _build_phases(steps, registry=None):
    """Compile the per-partition callables for a step chain.

    Returns ``(phases, kernel_id)`` where *phases* is a list of
    ``rows -> rows`` callables and *kernel_id* digests the generated
    sources (empty when nothing was generated).
    """
    phases = []
    digest = hashlib.sha1()
    for kind, payload in _segment_chain(steps):
        if kind == "step":
            phases.append(payload.run)
            continue
        source, constants = lower_segment(payload)
        digest.update(source.encode("utf-8"))
        code = _compile_source(source, registry=registry)
        phases.append(_bind_kernel(code, constants))
    return phases, "k" + digest.hexdigest()[:10]


@dataclass(frozen=True)
class CompiledPartitionTask:
    """Drop-in for :class:`~repro.engine.operations.PartitionTask`.

    Only the picklable spec (*steps*, the original narrow steps) and
    the *kernel_id* travel to worker processes; the bound kernel chain
    is rebuilt lazily per process from the structural code cache and
    memoized on the instance.
    """

    steps: tuple
    kernel_id: str = ""

    def __call__(self, rows):
        if isinstance(rows, ColumnarPartition):
            rows = rows.to_rows()
        phases = getattr(self, "_phases", None)
        if phases is None:
            phases, _kernel_id = _build_phases(self.steps)
            object.__setattr__(self, "_phases", phases)
        for phase in phases:
            rows = phase(rows)
        return rows

    def __getstate__(self):
        return (self.steps, self.kernel_id)

    def __setstate__(self, state):
        steps, kernel_id = state
        object.__setattr__(self, "steps", steps)
        object.__setattr__(self, "kernel_id", kernel_id)


def compile_partition_task(steps, registry=None):
    """Compile a narrow-step chain into a :class:`CompiledPartitionTask`.

    Returns None when there is nothing to gain (no Filter or Project in
    the chain -- a bare flat-map or partition map runs just as fast
    interpreted). Raises :class:`CodegenError` when the chain contains
    an expression that cannot be lowered; callers fall back to the
    interpreted :class:`~repro.engine.operations.PartitionTask`.
    """
    steps = tuple(steps)
    if not any(isinstance(s, (FilterStep, ProjectStep)) for s in steps):
        return None
    phases, kernel_id = _build_phases(steps, registry=registry)
    task = CompiledPartitionTask(steps, kernel_id)
    object.__setattr__(task, "_phases", phases)
    return task


# ---------------------------------------------------------------------------
# Columnar batch kernels
# ---------------------------------------------------------------------------


def _build_columnar_kernel(steps, width, registry=None):
    """Compile the columnar kernel for a Filter/Project chain.

    Returns ``(kernel, kernel_id)``. Shares the structural code cache
    (and its compile counters) with the row kernels.
    """
    source, constants = lower_columnar_segment(steps, width)
    code = _compile_source(source, registry=registry)
    digest = hashlib.sha1(source.encode("utf-8"))
    return (
        _bind_kernel(code, constants, name="_ckernel"),
        "c" + digest.hexdigest()[:10],
    )


@dataclass(frozen=True)
class ColumnarPartitionTask:
    """A fused Filter/Project chain running column-wise.

    Accepts either a :class:`~repro.engine.columnar.ColumnarPartition`
    (columnar sources pass their buffers straight through) or a row
    list (transposed on entry). ``emit`` selects the output boundary:
    ``"rows"`` transposes back to a row list (collect/storage edges,
    where wide stages and result collection expect row tuples);
    ``"partition"`` wraps the kernel's output columns in a
    ``ColumnarPartition`` so a downstream wide stage -- the columnar
    broadcast join or shuffle -- consumes the buffers without a
    transpose round-trip. Pickles as (steps, width, kernel_id, emit)
    like :class:`CompiledPartitionTask`; workers recompile lazily
    through the structural cache.
    """

    steps: tuple
    width: int
    kernel_id: str = ""
    emit: str = "rows"

    def __call__(self, partition):
        kernel = getattr(self, "_ckernel", None)
        if kernel is None:
            kernel, _kernel_id = _build_columnar_kernel(
                self.steps, self.width
            )
            object.__setattr__(self, "_ckernel", kernel)
        if isinstance(partition, ColumnarPartition):
            columns, length = list(partition.columns), len(partition)
        else:
            # Transient row lists skip the typed-buffer build entirely:
            # a bare zip(*) transpose is one C pass and tuple columns
            # work everywhere the kernel touches them (compress, zip,
            # element comprehensions). Empty inputs still need *width*
            # placeholder columns so pass-through refs stay indexable.
            rows = partition if isinstance(partition, list) else list(partition)
            length = len(rows)
            if length:
                columns = list(zip(*rows))
            else:
                columns = [()] * self.width
        columns, length = kernel(columns, length)
        if self.emit == "partition":
            return ColumnarPartition(columns, length)
        return columns_to_rows(columns, length)

    def __getstate__(self):
        return (self.steps, self.width, self.kernel_id, self.emit)

    def __setstate__(self, state):
        steps, width, kernel_id, emit = state
        object.__setattr__(self, "steps", steps)
        object.__setattr__(self, "width", width)
        object.__setattr__(self, "kernel_id", kernel_id)
        object.__setattr__(self, "emit", emit)


def compile_columnar_task(steps, width, registry=None, emit="rows"):
    """Compile a narrow-step chain into a :class:`ColumnarPartitionTask`.

    Returns None when the chain has no Filter or Project (mirroring
    :func:`compile_partition_task` -- nothing to gain). Raises
    :class:`CodegenError` when the chain contains steps or expressions
    the columnar layout cannot run (flat-maps, partition maps, exotic
    expressions); callers fall back to the row kernels and count
    ``executor.columnar_fallbacks``.
    """
    steps = tuple(steps)
    if width is None:
        raise CodegenError("columnar lowering needs the input width")
    if not any(isinstance(s, (FilterStep, ProjectStep)) for s in steps):
        return None
    kernel, kernel_id = _build_columnar_kernel(
        steps, width, registry=registry
    )
    task = ColumnarPartitionTask(steps, width, kernel_id, emit)
    object.__setattr__(task, "_ckernel", kernel)
    return task
