"""Compiled partition kernels: codegen for fused narrow-step chains.

The interpreted execution path runs every narrow stage as a tree of
bound closures dispatched per row per step: ``FilterStep`` and
``ProjectStep`` each re-materialize the partition list, and every
``BoundBinary`` costs a Python call frame per row. For the paper's hot
loops -- preselection filters, the u1/u2 interpretation maps, reduction
projections -- that dispatch overhead dominates the actual work.

This module lowers a fused chain of narrow steps (Filter -> Project ->
FlatMap, in any order) to a single generated per-partition Python loop:

* bound expressions become inline Python expressions over the row tuple
  (``r[1] == _c0 and r[2] in _c1``) with literals, frozensets and
  user callables hoisted into the kernel's globals as ``_c<n>``
  constants;
* a whole step chain becomes one ``for`` loop with ``continue`` guards
  for filters, tuple displays for projections and nested loops for
  flat-maps, so a partition is traversed once with zero intermediate
  lists;
* ``MapPartitionStep`` (an opaque partition-level callable) splits the
  chain into separately-fused segments.

Generated source is *structural*: constant values never appear in it,
so two plans that differ only in literals share one compiled code
object. The process-local code cache is keyed by the source string --
equivalently by (structural hash, schema), since column indices are
part of the source. Workers receive the picklable
:class:`CompiledPartitionTask` spec (the original steps) and compile
lazily on first use; code objects are never pickled.

Semantics match the interpreted path exactly (the differential fuzz
oracle compares the two on every case), with one documented relaxation:
a compiled flat-map streams each produced row through the downstream
steps immediately instead of materializing the whole step output first,
which can reorder *exceptions* (never rows) relative to the
interpreter.

Fallback: set ``REPRO_KERNELS=interpret`` in the environment (or pass
``compile_kernels=False`` to any executor) to restore the interpreted
path; lowering failures fall back per task and are counted as
``executor.kernel_fallbacks``.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass

from repro.engine.expressions import (
    BoundAnd,
    BoundApply,
    BoundBinary,
    BoundColumn,
    BoundInSet,
    BoundLiteral,
    BoundOr,
    BoundRowApply,
    BoundUnary,
)
from repro.engine.operations import (
    FilterStep,
    FlatMapStep,
    MapPartitionStep,
    ProjectStep,
)
from repro.engine.optimizer import ComposedApply, ComposedRowApply
from repro.obs import stopwatch

#: Environment variable selecting the default execution path.
#: ``compiled`` (default) generates kernels; ``interpret`` restores the
#: closure interpreter everywhere.
KERNELS_ENV = "REPRO_KERNELS"

#: Python operator symbols for :data:`repro.engine.expressions._BINARY_OPS`.
_BINARY_SYMBOLS = {
    "eq": "==",
    "ne": "!=",
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
    "add": "+",
    "sub": "-",
    "mul": "*",
    "div": "/",
}

#: Expression trees nested deeper than this are not inlined (CPython's
#: parser has a finite stack for nested parentheses); the task falls
#: back to the interpreter instead.
_MAX_EXPR_DEPTH = 60


class CodegenError(Exception):
    """A step chain (or expression) that cannot be lowered to source."""


def kernels_enabled(value=None):
    """Resolve the compiled-kernels default from the environment.

    *value* overrides the environment when given (the executors pass
    their constructor argument through here).
    """
    if value is None:
        value = os.environ.get(KERNELS_ENV, "compiled")
    off = ("interpret", "interpreted", "off", "0", "false", "no")
    return str(value).strip().lower() not in off


# ---------------------------------------------------------------------------
# Expression lowering
# ---------------------------------------------------------------------------


class _Lowering:
    """Accumulates hoisted constants while an expression tree is lowered."""

    def __init__(self):
        self.constants = []

    def const(self, value):
        name = "_c{}".format(len(self.constants))
        self.constants.append(value)
        return name


def lower_expression(expr, row, ctx, depth=0):
    """Lower one bound expression to a Python source expression.

    *row* is the source name of the row tuple; constant values are
    hoisted into *ctx*. Unknown bound-expression types are lowered as an
    opaque call of the object itself (``_c3(_r0)``), which is exactly
    the interpreter's semantics -- lowering is therefore total over
    every callable bound expression, present or future.
    """
    if depth > _MAX_EXPR_DEPTH:
        raise CodegenError("expression nests too deeply to inline")
    d = depth + 1
    if isinstance(expr, BoundColumn):
        return "{}[{}]".format(row, expr.index)
    if isinstance(expr, BoundLiteral):
        return ctx.const(expr.value)
    if isinstance(expr, BoundAnd):
        return "(bool({}) and bool({}))".format(
            lower_expression(expr.left, row, ctx, d),
            lower_expression(expr.right, row, ctx, d),
        )
    if isinstance(expr, BoundOr):
        return "(bool({}) or bool({}))".format(
            lower_expression(expr.left, row, ctx, d),
            lower_expression(expr.right, row, ctx, d),
        )
    if isinstance(expr, BoundBinary):
        symbol = _BINARY_SYMBOLS.get(expr.op)
        if symbol is None:
            raise CodegenError("unknown binary op {!r}".format(expr.op))
        return "({} {} {})".format(
            lower_expression(expr.left, row, ctx, d),
            symbol,
            lower_expression(expr.right, row, ctx, d),
        )
    if isinstance(expr, BoundUnary):
        inner = lower_expression(expr.operand, row, ctx, d)
        if expr.op == "not":
            return "(not {})".format(inner)
        if expr.op == "is_null":
            return "({} is None)".format(inner)
        if expr.op == "is_not_null":
            return "({} is not None)".format(inner)
        raise CodegenError("unknown unary op {!r}".format(expr.op))
    if isinstance(expr, BoundInSet):
        return "({} in {})".format(
            lower_expression(expr.operand, row, ctx, d),
            ctx.const(expr.values),
        )
    if isinstance(expr, BoundApply):
        args = ", ".join("{}[{}]".format(row, i) for i in expr.indices)
        return "{}({})".format(ctx.const(expr.func), args)
    if isinstance(expr, ComposedApply):
        args = ", ".join(
            lower_expression(p, row, ctx, d) for p in expr.producers
        )
        return "{}({})".format(ctx.const(expr.func), args)
    if isinstance(expr, BoundRowApply):
        return "{}(dict(zip({}, {})))".format(
            ctx.const(expr.func), ctx.const(expr.names), row
        )
    if isinstance(expr, ComposedRowApply):
        if expr.producers:
            values = "({},)".format(
                ", ".join(
                    lower_expression(p, row, ctx, d) for p in expr.producers
                )
            )
        else:
            values = "()"
        return "{}(dict(zip({}, {})))".format(
            ctx.const(expr.func), ctx.const(expr.names), values
        )
    # Unknown bound expression: call the object itself, which is the
    # interpreter's contract for any bound expression.
    return "{}({})".format(ctx.const(expr), row)


# ---------------------------------------------------------------------------
# Step-chain lowering
# ---------------------------------------------------------------------------


def lower_segment(steps):
    """Lower one fuseable run of steps to ``(source, constants)``.

    The generated function is named ``_kernel`` and maps a list of row
    tuples to a list of row tuples in one pass.
    """
    ctx = _Lowering()
    lines = [
        "def _kernel(_rows):",
        "    _out = []",
        "    _append = _out.append",
        "    for _r0 in _rows:",
    ]
    var = "_r0"
    seq = 0
    indent = 2
    for step in steps:
        pad = "    " * indent
        if isinstance(step, FilterStep):
            predicate = lower_expression(step.predicate, var, ctx)
            lines.append(pad + "if not ({}):".format(predicate))
            lines.append(pad + "    continue")
        elif isinstance(step, ProjectStep):
            seq += 1
            new = "_r{}".format(seq)
            if step.exprs:
                items = ", ".join(
                    lower_expression(e, var, ctx) for e in step.exprs
                )
                lines.append(pad + "{} = ({},)".format(new, items))
            else:
                lines.append(pad + "{} = ()".format(new))
            var = new
        elif isinstance(step, FlatMapStep):
            seq += 1
            new = "_r{}".format(seq)
            lines.append(
                pad + "for {} in {}({}):".format(new, ctx.const(step.func), var)
            )
            indent += 1
            var = new
        else:
            raise CodegenError(
                "step {!r} is not fuseable".format(type(step).__name__)
            )
    lines.append("    " * indent + "_append({})".format(var))
    lines.append("    return _out")
    return "\n".join(lines) + "\n", ctx.constants


def _segment_chain(steps):
    """Split *steps* into fuseable runs and partition-level barriers.

    Returns a list of ``("fused", (steps...))`` / ``("step", step)``
    entries; ``MapPartitionStep`` (and any unknown step type) is a
    barrier run as-is between generated kernels.
    """
    chain = []
    run = []
    for step in steps:
        if isinstance(step, (FilterStep, ProjectStep, FlatMapStep)):
            run.append(step)
            continue
        if run:
            chain.append(("fused", tuple(run)))
            run = []
        chain.append(("step", step))
    if run:
        chain.append(("fused", tuple(run)))
    return chain


# ---------------------------------------------------------------------------
# Process-local compile cache
# ---------------------------------------------------------------------------

_CODE_CACHE = {}  # source string -> code object


def clear_kernel_cache():
    """Drop every cached code object (test isolation helper)."""
    _CODE_CACHE.clear()


def kernel_cache_size():
    """Number of distinct kernel code objects compiled in this process."""
    return len(_CODE_CACHE)


def _compile_source(source, registry=None):
    """Compile *source* through the process-local structural cache.

    With a *registry* (the owning executor's ``obs``), cache misses
    count as ``executor.kernels_compiled`` (plus a
    ``executor.kernel_compile_seconds`` observation) and hits as
    ``executor.kernel_cache_hits``. Workers compile without a registry;
    their compiles are invisible to driver metrics by design.
    """
    code = _CODE_CACHE.get(source)
    if code is not None:
        if registry is not None:
            registry.inc("executor.kernel_cache_hits")
        return code
    with stopwatch() as watch:
        code = compile(source, "<repro-kernel>", "exec")
    _CODE_CACHE[source] = code
    if registry is not None:
        registry.inc("executor.kernels_compiled")
        registry.observe("executor.kernel_compile_seconds", watch.seconds)
    return code


def _bind_kernel(code, constants):
    """Materialize the kernel function with its hoisted constants."""
    namespace = {"_c{}".format(i): v for i, v in enumerate(constants)}
    exec(code, namespace)  # noqa: S102 -- source is generated, not user input
    return namespace["_kernel"]


def _build_phases(steps, registry=None):
    """Compile the per-partition callables for a step chain.

    Returns ``(phases, kernel_id)`` where *phases* is a list of
    ``rows -> rows`` callables and *kernel_id* digests the generated
    sources (empty when nothing was generated).
    """
    phases = []
    digest = hashlib.sha1()
    for kind, payload in _segment_chain(steps):
        if kind == "step":
            phases.append(payload.run)
            continue
        source, constants = lower_segment(payload)
        digest.update(source.encode("utf-8"))
        code = _compile_source(source, registry=registry)
        phases.append(_bind_kernel(code, constants))
    return phases, "k" + digest.hexdigest()[:10]


@dataclass(frozen=True)
class CompiledPartitionTask:
    """Drop-in for :class:`~repro.engine.operations.PartitionTask`.

    Only the picklable spec (*steps*, the original narrow steps) and
    the *kernel_id* travel to worker processes; the bound kernel chain
    is rebuilt lazily per process from the structural code cache and
    memoized on the instance.
    """

    steps: tuple
    kernel_id: str = ""

    def __call__(self, rows):
        phases = getattr(self, "_phases", None)
        if phases is None:
            phases, _kernel_id = _build_phases(self.steps)
            object.__setattr__(self, "_phases", phases)
        for phase in phases:
            rows = phase(rows)
        return rows

    def __getstate__(self):
        return (self.steps, self.kernel_id)

    def __setstate__(self, state):
        steps, kernel_id = state
        object.__setattr__(self, "steps", steps)
        object.__setattr__(self, "kernel_id", kernel_id)


def compile_partition_task(steps, registry=None):
    """Compile a narrow-step chain into a :class:`CompiledPartitionTask`.

    Returns None when there is nothing to gain (no Filter or Project in
    the chain -- a bare flat-map or partition map runs just as fast
    interpreted). Raises :class:`CodegenError` when the chain contains
    an expression that cannot be lowered; callers fall back to the
    interpreted :class:`~repro.engine.operations.PartitionTask`.
    """
    steps = tuple(steps)
    if not any(isinstance(s, (FilterStep, ProjectStep)) for s in steps):
        return None
    phases, kernel_id = _build_phases(steps, registry=registry)
    task = CompiledPartitionTask(steps, kernel_id)
    object.__setattr__(task, "_phases", phases)
    return task
