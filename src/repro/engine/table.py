"""The :class:`Table` API.

A Table is an immutable, lazily-evaluated handle on a logical plan,
analogous to a Spark DataFrame. Transformations (``filter``, ``select``,
``join`` ...) build new plans; actions (``collect``, ``count``,
``to_dicts``) hand the plan to the context's executor.

Examples
--------
>>> from repro.engine import EngineContext, col
>>> ctx = EngineContext.serial()
>>> t = ctx.table_from_dicts(
...     [{"t": 1.0, "m_id": 3}, {"t": 2.0, "m_id": 7}], columns=["t", "m_id"]
... )
>>> t.filter(col("m_id") == 3).count()
1
"""

from __future__ import annotations

from repro.engine import plan as logical
from repro.engine.errors import PlanError, SchemaError
from repro.engine.expressions import Expression, col
from repro.engine.schema import ANY, Schema


class Table:
    """An immutable tabular dataset bound to an :class:`EngineContext`."""

    def __init__(self, context, plan_node):
        self._context = context
        self._plan = plan_node

    # -- introspection ---------------------------------------------------
    @property
    def schema(self):
        return self._plan.schema

    @property
    def columns(self):
        return list(self._plan.schema.names)

    @property
    def context(self):
        return self._context

    @property
    def plan(self):
        return self._plan

    def __repr__(self):
        return "Table({})".format(", ".join(self.columns))

    # -- narrow transformations -------------------------------------------
    def filter(self, predicate):
        """Keep rows where *predicate* (an unbound expression) holds."""
        bound = predicate.bind(self.schema)
        return self._derive(logical.Filter(self._plan, bound))

    where = filter

    def select(self, *names):
        """Project to the named columns, in the given order."""
        out_schema = self.schema.select(names)
        exprs = tuple(col(n).bind(self.schema) for n in names)
        return self._derive(logical.Project(self._plan, out_schema, exprs))

    def drop(self, *names):
        """Remove the named columns."""
        out_schema = self.schema.drop(names)
        return self.select(*out_schema.names)

    def rename(self, mapping):
        """Rename columns per a {old: new} mapping."""
        out_schema = self.schema.rename(mapping)
        exprs = tuple(col(n).bind(self.schema) for n in self.schema.names)
        return self._derive(logical.Project(self._plan, out_schema, exprs))

    def with_column(self, name, expression, dtype=ANY):
        """Append (or replace) a column computed from *expression*."""
        if not isinstance(expression, Expression):
            raise PlanError(
                "with_column expects an unbound expression, got {!r}".format(
                    type(expression).__name__
                )
            )
        bound = expression.bind(self.schema)
        if name in self.schema:
            exprs = []
            for existing in self.schema.names:
                if existing == name:
                    exprs.append(bound)
                else:
                    exprs.append(col(existing).bind(self.schema))
            return self._derive(
                logical.Project(self._plan, self.schema, tuple(exprs))
            )
        out_schema = self.schema.append(name, dtype)
        exprs = tuple(
            col(n).bind(self.schema) for n in self.schema.names
        ) + (bound,)
        return self._derive(logical.Project(self._plan, out_schema, exprs))

    def flat_map(self, func, output_columns, dtypes=None):
        """Expand each row tuple into zero or more output row tuples.

        *func* must be picklable and accept the input row as a tuple.
        """
        out_schema = Schema.of(*output_columns, dtypes=dtypes)
        return self._derive(logical.FlatMap(self._plan, out_schema, func))

    def map_partitions(self, func, output_columns=None, dtypes=None):
        """Apply *func* to every partition (a list of row tuples)."""
        if output_columns is None:
            out_schema = self.schema
        else:
            out_schema = Schema.of(*output_columns, dtypes=dtypes)
        return self._derive(logical.MapPartitions(self._plan, out_schema, func))

    # -- wide transformations ----------------------------------------------
    def join(self, other, on, how="inner"):
        """Equi-join with *other* on shared key column names.

        *on* is a column name or list of names present in both tables. The
        result carries the left columns followed by the right non-key
        columns. ``how`` is ``"inner"`` or ``"left"``.
        """
        if self._context is not other._context:
            raise PlanError("cannot join tables from different contexts")
        keys = [on] if isinstance(on, str) else list(on)
        if how not in ("inner", "left"):
            raise PlanError("unsupported join type {!r}".format(how))
        for key in keys:
            if key not in self.schema or key not in other.schema:
                raise SchemaError(
                    "join key {!r} must exist in both tables".format(key)
                )
        overlap = (
            set(self.schema.names)
            & set(other.schema.names) - set(keys)
        )
        if overlap:
            raise SchemaError(
                "non-key columns {} exist in both tables; rename one side".format(
                    sorted(overlap)
                )
            )
        right_rest = other.schema.drop(keys)
        out_schema = self.schema.concat(right_rest)
        node = logical.Join(
            self._plan,
            other._plan,
            tuple(keys),
            tuple(keys),
            how,
            out_schema,
        )
        return self._derive(node)

    def union(self, other):
        """Concatenate rows of two tables with identical column names."""
        if self.schema.names != other.schema.names:
            raise SchemaError(
                "union requires identical columns: {} vs {}".format(
                    list(self.schema.names), list(other.schema.names)
                )
            )
        return self._derive(logical.Union(self._plan, other._plan))

    def group_by(self, *keys):
        """Start a grouped aggregation; returns a :class:`GroupedTable`."""
        for key in keys:
            self.schema.index_of(key)  # validate eagerly
        return GroupedTable(self, tuple(keys))

    def sort(self, keys, ascending=True):
        """Globally sort by *keys* (a name or list of names)."""
        names = [keys] if isinstance(keys, str) else list(keys)
        if isinstance(ascending, bool):
            directions = [ascending] * len(names)
        else:
            directions = list(ascending)
        if len(directions) != len(names):
            raise PlanError("ascending flags must be parallel to sort keys")
        for name in names:
            self.schema.index_of(name)
        return self._derive(
            logical.Sort(self._plan, tuple(names), tuple(directions))
        )

    def repartition(self, num_partitions, keys=()):
        """Redistribute rows across *num_partitions* partitions."""
        names = [keys] if isinstance(keys, str) else list(keys)
        for name in names:
            self.schema.index_of(name)
        return self._derive(
            logical.Repartition(self._plan, num_partitions, tuple(names))
        )

    def sorted_map_partitions(
        self, func, output_columns=None, dtypes=None, carry_rows=1
    ):
        """Windowed partition map with carry rows from the predecessor.

        The table must already be sorted (use :meth:`sort` first). *func*
        receives ``(partition, carry)`` where carry holds up to
        ``carry_rows`` trailing rows of the preceding data and returns the
        output rows for the partition.
        """
        if output_columns is None:
            out_schema = self.schema
        else:
            out_schema = Schema.of(*output_columns, dtypes=dtypes)
        return self._derive(
            logical.SortedMapPartitions(
                self._plan, out_schema, func, carry_rows
            )
        )

    def distinct(self):
        """Remove duplicate rows (exact tuple equality).

        Implemented as a hash repartition on all columns followed by a
        per-partition dedup, so equal rows meet in one partition.
        """
        repartitioned = self.repartition(
            self._context.default_parallelism, keys=list(self.schema.names)
        )
        return repartitioned.map_partitions(_distinct_partition)

    def limit(self, n):
        """Keep at most *n* rows (in current partition order).

        Lazy: builds a ``Limit`` plan node evaluated by the executors.
        Partitions are truncated left to right once *n* rows are
        reached; the partition structure is preserved (trailing
        partitions come back empty rather than the whole result being
        collapsed into a single partition).
        """
        if n < 0:
            raise PlanError("limit must be non-negative")
        return self._derive(logical.Limit(self._plan, int(n)))

    def split_by_key(self, key, keys=None):
        """Split into one table per distinct value of column *key*.

        A single routed pass over the data (one shuffle stage) replaces
        the one-filter-scan-per-key fan-out: every row is routed by its
        *key* value into a named group and each group is returned as a
        materialized :class:`Table` backed by co-partitioned sources.
        Group partitions mirror the input partitioning -- group
        partition ``i`` holds input partition ``i``'s rows with that
        key value, in order -- so each group equals the corresponding
        ``filter(col(key) == value)`` exactly (same rows, same order,
        same partition count), and sibling groups are co-partitioned
        with each other.

        When *keys* is given the result maps exactly those keys in that
        order (absent keys map to empty tables of the same schema);
        otherwise keys are discovered from the data and ordered
        deterministically.

        Returns a ``{key value: Table}`` dict.
        """
        self.schema.index_of(key)  # validate eagerly
        groups, _num_partitions = self._context.executor.execute_split(
            self._plan, key, keys=keys
        )
        if keys is None:
            ordered = sorted(groups, key=_split_group_order)
        else:
            ordered = list(groups)
        names = list(self.schema.names)
        dtypes = [f.dtype for f in self.schema]
        return {
            value: self._context.table_from_partitions(
                names, groups[value], dtypes=dtypes
            )
            for value in ordered
        }

    def describe(self, *names):
        """Summary statistics per column: count, nulls, distinct, and for
        purely numeric columns min/max/mean. Returns {column: stats}.
        """
        columns = list(names) if names else list(self.schema.names)
        out = {}
        for name in columns:
            values = self.column_values(name)
            non_null = [v for v in values if v is not None]
            numeric = [
                v
                for v in non_null
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            ]
            stats = {
                "count": len(values),
                "nulls": len(values) - len(non_null),
                "distinct": len(set(map(repr, non_null))),
            }
            if numeric and len(numeric) == len(non_null):
                stats.update(
                    min=min(numeric),
                    max=max(numeric),
                    mean=sum(numeric) / len(numeric),
                )
            out[name] = stats
        return out

    def explain(self):
        """Human-readable rendering of the logical plan."""
        lines = []
        _explain_node(self._plan, 0, lines)
        return "\n".join(lines)

    # -- actions -----------------------------------------------------------
    def collect(self):
        """Execute the plan and return all rows as a list of tuples."""
        partitions = self._context.executor.execute(self._plan)
        return [row for part in partitions for row in part]

    def collect_partitions(self):
        """Execute the plan and return the raw list of partitions."""
        return self._context.executor.execute(self._plan)

    def to_dicts(self):
        """Execute and return rows as a list of name -> value dicts."""
        names = self.schema.names
        return [dict(zip(names, row)) for row in self.collect()]

    def count(self):
        """Number of rows in the table."""
        return sum(len(p) for p in self.collect_partitions())

    def first(self):
        """The first row, or None if the table is empty."""
        rows = self.collect()
        return rows[0] if rows else None

    def cache(self):
        """Materialize the plan into a new in-memory source table."""
        partitions = self._context.executor.execute(self._plan)
        node = logical.Source(self.schema, tuple(tuple(p) for p in partitions))
        return self._derive(node)

    def column_values(self, name):
        """Collect the values of one column as a list."""
        return [row[0] for row in self.select(name).collect()]

    # -- internals -----------------------------------------------------------
    def _derive(self, node):
        return Table(self._context, node)


def _split_group_order(value):
    """Deterministic ordering for heterogeneous split-group keys."""
    return (type(value).__name__, value)


def _distinct_partition(rows):
    seen = set()
    out = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            out.append(row)
    return out


def _explain_node(node, depth, lines):
    indent = "  " * depth
    name = type(node).__name__
    details = ""
    if isinstance(node, logical.Source):
        details = " partitions={} rows={}".format(
            len(node.partitions), sum(len(p) for p in node.partitions)
        )
    elif isinstance(node, logical.Join):
        details = " on={} how={}".format(list(node.left_keys), node.how)
    elif isinstance(node, logical.Sort):
        details = " keys={}".format(list(node.keys))
    elif isinstance(node, logical.GroupBy):
        details = " keys={} aggs={}".format(
            list(node.keys), [a[0] for a in node.aggregates]
        )
    elif isinstance(node, logical.Repartition):
        details = " n={} keys={}".format(node.num_partitions, list(node.keys))
    elif isinstance(node, logical.Project):
        details = " columns={}".format(list(node.out_schema.names))
    elif isinstance(node, logical.Limit):
        details = " n={}".format(node.n)
    elif isinstance(node, logical.SplitByKey):
        details = " key={!r} group={!r}".format(node.key, node.group)
    lines.append("{}{}{}".format(indent, name, details))
    for child in node.children():
        _explain_node(child, depth + 1, lines)


class GroupedTable:
    """Builder returned by :meth:`Table.group_by`."""

    def __init__(self, table, keys):
        self._table = table
        self._keys = keys

    def agg(self, *specs):
        """Compute aggregates.

        Each spec is a tuple ``(output_name, aggregate, input_column)``
        where *aggregate* is an instance from
        :mod:`repro.engine.aggregates` and *input_column* may be None for
        aggregates that ignore values (e.g. Count).
        """
        if not specs:
            raise PlanError("agg requires at least one aggregate spec")
        schema = self._table.schema
        names = list(self._keys)
        for name, _agg, column in specs:
            if column is not None:
                schema.index_of(column)  # validate
            names.append(name)
        out_schema = Schema.of(*names)
        node = logical.GroupBy(
            self._table.plan, self._keys, tuple(specs), out_schema
        )
        return Table(self._table.context, node)
