"""Logical query plans.

A :class:`~repro.engine.table.Table` is a thin handle on a tree of plan
nodes. Nothing is computed until an action (``collect``, ``count``,
``write``) is called, at which point an executor walks the tree, fuses
chains of *narrow* transformations (filter/project/map/flat-map) into
single per-partition tasks and runs *wide* transformations (join, group
by, sort, repartition) with an explicit shuffle -- the same split Spark
makes between narrow and wide dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.schema import Schema


class PlanNode:
    """Base class of all logical plan nodes."""

    #: Narrow nodes can be fused into their parent's per-partition task.
    narrow = False

    @property
    def schema(self):
        raise NotImplementedError

    def children(self):
        return ()


def iter_nodes(node):
    """Yield *node* and every descendant, depth-first, parents first."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(current.children()))


def plan_size(node):
    """Number of nodes in the plan tree rooted at *node*.

    The differential shrinker reports reproducer size in plan nodes; the
    count excludes nothing (sources included).
    """
    return sum(1 for _unused in iter_nodes(node))


@dataclass(frozen=True)
class Source(PlanNode):
    """Materialized in-memory partitions.

    Each partition is either a tuple of row tuples or a
    :class:`~repro.engine.columnar.ColumnarPartition` (column-major
    buffers, possibly mmap-backed). Columnar partitions use identity
    equality, so two Sources over separately built columnar data never
    compare equal -- structural plan caching simply misses instead of
    misfiring.
    """

    source_schema: Schema
    partitions: tuple  # row-tuple tuples or ColumnarPartition objects

    @property
    def schema(self):
        return self.source_schema


@dataclass(frozen=True)
class Filter(PlanNode):
    """Keep rows for which the bound predicate is true."""

    child: PlanNode
    predicate: object  # bound expression
    narrow = True

    @property
    def schema(self):
        return self.child.schema

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class Project(PlanNode):
    """Evaluate one bound expression per output column."""

    child: PlanNode
    out_schema: Schema
    exprs: tuple  # bound expressions, parallel to out_schema
    narrow = True

    @property
    def schema(self):
        return self.out_schema

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class FlatMap(PlanNode):
    """Expand each row into zero or more rows of a new schema.

    ``func`` receives the input row as a tuple and must return an iterable
    of output row tuples. It must be picklable.
    """

    child: PlanNode
    out_schema: Schema
    func: object
    narrow = True

    @property
    def schema(self):
        return self.out_schema

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class MapPartitions(PlanNode):
    """Apply a picklable callable to each whole partition.

    ``func`` receives a list of row tuples and returns a list of row
    tuples of ``out_schema``. Used for partition-local algorithms such as
    deduplicating consecutive rows.
    """

    child: PlanNode
    out_schema: Schema
    func: object
    narrow = True

    @property
    def schema(self):
        return self.out_schema

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class Join(PlanNode):
    """Equi-join on named key columns.

    ``how`` is ``"inner"`` or ``"left"``. The output schema is the left
    schema concatenated with the right schema minus the right key columns
    (they would duplicate the left ones).
    """

    left: PlanNode
    right: PlanNode
    left_keys: tuple
    right_keys: tuple
    how: str
    out_schema: Schema

    @property
    def schema(self):
        return self.out_schema

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class Union(PlanNode):
    """Concatenate two tables with identical column names."""

    left: PlanNode
    right: PlanNode

    @property
    def schema(self):
        return self.left.schema

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class GroupBy(PlanNode):
    """Group by key columns and compute aggregates.

    ``aggregates`` is a tuple of (output name, Aggregate instance,
    input column index or None).
    """

    child: PlanNode
    keys: tuple  # column names
    aggregates: tuple
    out_schema: Schema

    @property
    def schema(self):
        return self.out_schema

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class Sort(PlanNode):
    """Globally sort by the given key columns (ascending flags parallel)."""

    child: PlanNode
    keys: tuple  # column names
    ascending: tuple  # bools parallel to keys

    @property
    def schema(self):
        return self.child.schema

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class Repartition(PlanNode):
    """Redistribute rows into ``num_partitions`` partitions.

    If ``keys`` is non-empty rows are hash-partitioned on those columns,
    otherwise they are split evenly (round-robin by block).
    """

    child: PlanNode
    num_partitions: int
    keys: tuple = field(default_factory=tuple)

    @property
    def schema(self):
        return self.child.schema

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class Limit(PlanNode):
    """Keep the first ``n`` rows, in current partition order.

    Evaluated lazily by the executors (not at plan-build time): the
    child's partitions are truncated left to right once the running row
    count reaches ``n``, preserving the partition structure -- trailing
    partitions survive as empty partitions instead of collapsing the
    result into a single one.
    """

    child: PlanNode
    n: int

    @property
    def schema(self):
        return self.child.schema

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class SplitByKey(PlanNode):
    """One named output group of a single-pass split of ``child``.

    The executor routes every child row by its value in the ``key``
    column into per-value groups in *one* pass -- one shuffle stage for
    all groups -- and serves this node's ``group`` from that routing.
    Sibling ``SplitByKey`` nodes over the same child and key share the
    pass through the executor's split cache, which is what turns the
    filter-fan-out pattern (one full scan per key value) into a single
    shuffle.

    Routing preserves partition structure: a group's partition ``i`` is
    the subsequence of child partition ``i`` with that key value, so
    every group is co-partitioned with its siblings and the node is
    exactly (order- and partition-) equivalent to
    ``Filter(child, key == group)``.
    """

    child: PlanNode
    key: str
    group: object

    @property
    def schema(self):
        return self.child.schema

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class SortedMapPartitions(PlanNode):
    """Partition-wise map that runs *after* a global sort with carry rows.

    ``func(partition, carry)`` receives the sorted partition and a list of
    up to ``carry_rows`` rows from the tail of the previous partition and
    returns a list of output rows. This implements windowed operators
    (lag, gap-to-previous, forward-fill) without giving up partitioning.
    """

    child: PlanNode  # must already be globally sorted + range partitioned
    out_schema: Schema
    func: object
    carry_rows: int

    @property
    def schema(self):
        return self.out_schema

    def children(self):
        return (self.child,)
