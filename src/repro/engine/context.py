"""Engine context: the entry point for creating tables.

An :class:`EngineContext` pairs an executor with table construction
helpers, playing the role of a SparkSession in the paper's deployment.
"""

from __future__ import annotations

from repro.engine import plan as logical
from repro.engine.columnar import ColumnarPartition
from repro.engine.errors import PlanError
from repro.engine.executor import (
    MultiprocessingExecutor,
    SerialExecutor,
    SimulatedClusterExecutor,
)
from repro.engine.operations import split_evenly
from repro.engine.schema import Schema
from repro.engine.table import Table


class EngineContext:
    """Factory for :class:`~repro.engine.table.Table` objects.

    Examples
    --------
    >>> ctx = EngineContext.serial()
    >>> t = ctx.table_from_rows(["a", "b"], [(1, 2), (3, 4)])
    >>> t.count()
    2
    """

    def __init__(self, executor):
        self.executor = executor

    @classmethod
    def serial(cls, default_parallelism=4):
        """Context running everything in-process (reference executor)."""
        return cls(SerialExecutor(default_parallelism=default_parallelism))

    @classmethod
    def parallel(cls, num_workers=None, default_parallelism=None):
        """Context running partition tasks on worker processes."""
        return cls(
            MultiprocessingExecutor(
                num_workers=num_workers,
                default_parallelism=default_parallelism,
            )
        )

    @classmethod
    def simulated_cluster(cls, num_workers=10, stage_latency=0.001):
        """Context with the measured cluster-makespan cost model.

        Results are identical to :meth:`serial`; the executor's
        ``simulated_seconds`` additionally estimates the wall time a
        ``num_workers`` cluster would need (see DESIGN.md).
        """
        return cls(
            SimulatedClusterExecutor(
                num_workers=num_workers, stage_latency=stage_latency
            )
        )

    @property
    def default_parallelism(self):
        return self.executor.default_parallelism

    def close(self):
        self.executor.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # -- table constructors -------------------------------------------------
    def table_from_rows(self, columns, rows, dtypes=None, num_partitions=None):
        """Create a table from row tuples, splitting into partitions."""
        schema = Schema.of(*columns, dtypes=dtypes)
        width = len(schema)
        rows = [tuple(r) for r in rows]
        # Every row is validated, not just the first: a ragged row deep
        # in the input would otherwise surface much later as an opaque
        # IndexError inside some executor task.
        for index, row in enumerate(rows):
            if len(row) != width:
                raise PlanError(
                    "row {} has width {}, which does not match schema "
                    "width {}".format(index, len(row), width)
                )
        if num_partitions is None:
            num_partitions = self.default_parallelism
        partitions = split_evenly(rows, max(num_partitions, 1))
        node = logical.Source(schema, tuple(tuple(p) for p in partitions))
        return Table(self, node)

    def table_from_dicts(self, records, columns, dtypes=None, num_partitions=None):
        """Create a table from dict records using *columns* ordering."""
        rows = [tuple(rec[c] for c in columns) for rec in records]
        return self.table_from_rows(
            columns, rows, dtypes=dtypes, num_partitions=num_partitions
        )

    def table_from_partitions(self, columns, partitions, dtypes=None):
        """Create a table preserving an existing partitioning.

        Row partitions are snapshotted into tuples;
        :class:`ColumnarPartition` entries are held as-is (read-only by
        contract), so layouts produced by the columnar wide stages --
        split groups, shuffle buckets -- flow back into a Source
        without a row detour.
        """
        schema = Schema.of(*columns, dtypes=dtypes)
        node = logical.Source(
            schema,
            tuple(
                p if isinstance(p, ColumnarPartition)
                else tuple(tuple(r) for r in p)
                for p in partitions
            ),
        )
        return Table(self, node)

    def table_from_columnar(self, columns, partitions, dtypes=None):
        """Create a table from pre-built columnar partitions.

        *partitions* is a sequence of :class:`ColumnarPartition` objects
        (or row lists, which are transposed into one). The partitions
        are held in the Source node as-is -- no row materialization
        happens until a task that needs rows runs -- which is how the
        columnar tracefile reader exposes mmap'ed column sections to the
        engine without decoding payloads up front.
        """
        schema = Schema.of(*columns, dtypes=dtypes)
        width = len(schema)
        built = []
        for index, part in enumerate(partitions):
            if not isinstance(part, ColumnarPartition):
                part = ColumnarPartition.from_rows(
                    [tuple(r) for r in part], width
                )
            if part.width != width:
                raise PlanError(
                    "columnar partition {} has width {}, which does not "
                    "match schema width {}".format(index, part.width, width)
                )
            built.append(part)
        node = logical.Source(schema, tuple(built))
        return Table(self, node)

    def empty_table(self, columns, dtypes=None):
        """Create an empty table with the given schema."""
        return self.table_from_rows(columns, [], dtypes=dtypes, num_partitions=1)
