"""Columnar partitions: typed column buffers behind one abstraction.

A partition is normally a ``list`` of row tuples. For the hot numeric
paths of the paper -- preselection scans over ``(t, b_id, m_id)``,
interpretation projections, reduction filters -- that layout pays a
Python object per cell and a tuple per row. A
:class:`ColumnarPartition` stores the same rows column-major instead:

* an ``array.array('q')`` buffer for all-``int`` columns;
* an ``array.array('d')`` buffer for all-``float`` columns (bit-exact,
  including NaN and signed zeros);
* a :class:`BytesColumn` plane -- one contiguous blob plus an offsets
  array -- for all-``bytes`` columns (frame payloads);
* a plain object list for everything else (str, bool, None, mixed).

Layout selection is *exact-type* driven, so ``rows -> columns -> rows``
is an identity: ``True`` never comes back as ``1``, ``1`` never as
``1.0``, big ints that overflow 64 bits stay objects. The property
tests in ``tests/engine/test_columnar.py`` pin this.

Columnar partitions are the engine's inter-stage currency: they appear
inside :class:`~repro.engine.plan.Source` nodes (built by
:meth:`EngineContext.table_from_columnar` or the columnar tracefile
reader), inside the generated columnar batch kernels of
:mod:`repro.engine.codegen`, and -- since the wide-stage lowering --
crossing shuffle and broadcast-join boundaries between stages, where
:meth:`ColumnarPartition.gather` reassembles buckets and join outputs
by index without materializing intermediate row tuples. Rows are
materialized only at storage/collect edges (and per task wherever a
chain or stage cannot run columnar), via :func:`as_row_partition`.

Instances are treated as read-only once built; kernels always allocate
fresh column lists instead of mutating buffers, so a partition can be
shared between a plan node, the split cache and several tasks.
"""

from __future__ import annotations

from array import array

__all__ = [
    "BytesColumn",
    "ColumnarPartition",
    "as_row_partition",
    "columns_to_rows",
    "concat_partitions",
    "gather_column",
]


class BytesColumn:
    """An all-``bytes`` column: one contiguous blob plus offsets.

    ``offsets`` has ``len(column) + 1`` entries; cell *i* is
    ``blob[offsets[i]:offsets[i + 1]]``. This is the payload plane of
    the columnar trace format: payload cells stay densely packed and a
    cell is materialized (as ``bytes``) only when accessed.
    """

    __slots__ = ("offsets", "blob")

    def __init__(self, offsets, blob):
        if len(offsets) == 0:
            raise ValueError("offsets must have at least one entry")
        self.offsets = offsets
        self.blob = blob

    @classmethod
    def from_values(cls, values):
        offsets = array("Q", [0])
        chunks = []
        total = 0
        for value in values:
            total += len(value)
            offsets.append(total)
            chunks.append(value)
        return cls(offsets, b"".join(chunks))

    def __len__(self):
        return len(self.offsets) - 1

    def __getitem__(self, index):
        offsets = self.offsets
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("BytesColumn index out of range")
        # bytes() is an identity on bytes slices and materializes
        # memoryview slices (mmap-backed blobs), so cells always come
        # back with the exact type the rows went in with.
        return bytes(self.blob[offsets[index] : offsets[index + 1]])

    def __iter__(self):
        blob = self.blob
        offsets = self.offsets
        start = offsets[0]
        for end in offsets[1:]:
            yield bytes(blob[start:end])
            start = end

    def __reduce__(self):
        offsets = self.offsets
        if isinstance(offsets, memoryview):
            offsets = array(offsets.format, offsets)
        return (BytesColumn, (offsets, bytes(self.blob)))

    def nbytes(self):
        return len(self.blob) + len(self.offsets) * self.offsets.itemsize


def _build_column(values):
    """Pick the densest exact-type-preserving layout for one column."""
    kinds = set(map(type, values))
    if kinds == {int}:
        try:
            return array("q", values)
        except OverflowError:
            return list(values)
    if kinds == {float}:
        return array("d", values)
    if kinds == {bytes}:
        return BytesColumn.from_values(values)
    # bool/str/None/mixed columns stay object lists: bools must come
    # back as bools (array('b') would launder them into ints), and a
    # mixed column has no single buffer type.
    return list(values)


def gather_column(column, indices):
    """Select ``column[i] for i in indices`` preserving the buffer kind.

    Typed buffers stay typed (``array('q')`` gathers into ``array('q')``,
    mmap'ed ``memoryview`` columns into an equivalent ``array``,
    :class:`BytesColumn` into a fresh blob+offsets plane); everything
    else -- object lists, tuple columns from row transposes, lazy
    decoded columns -- gathers into a plain object list. Cell values are
    exactly what indexing the source column yields, so a gather composes
    with :func:`columns_to_rows` into the same row tuples a row-level
    selection would build.
    """
    if isinstance(column, array):
        return array(column.typecode, map(column.__getitem__, indices))
    if isinstance(column, memoryview):
        return array(column.format, map(column.__getitem__, indices))
    if isinstance(column, BytesColumn):
        offsets = column.offsets
        blob = column.blob
        out_offsets = array("Q", [0])
        chunks = []
        total = 0
        for i in indices:
            chunk = blob[offsets[i] : offsets[i + 1]]
            total += len(chunk)
            out_offsets.append(total)
            chunks.append(chunk)
        # bytes() flattens memoryview chunks from mmap-backed blobs.
        return BytesColumn(out_offsets, bytes(b"".join(chunks)))
    return [column[i] for i in indices]


def _concat_column(columns):
    """Concatenate per-partition buffers of one column, preserving kind.

    All-``array`` runs of one typecode stay a single array (memoryviews
    count as arrays of their format); all-:class:`BytesColumn` runs
    splice blobs and rebase offsets. Mixed kinds fall back to one object
    list, which keeps exact cell types because iterating any column kind
    yields the original cell values.
    """
    kinds = set()
    for column in columns:
        if isinstance(column, array):
            kinds.add(("array", column.typecode))
        elif isinstance(column, memoryview):
            kinds.add(("array", column.format))
        elif isinstance(column, BytesColumn):
            kinds.add(("bytes", ""))
        else:
            kinds.add(("object", ""))
    if len(kinds) == 1:
        kind, code = next(iter(kinds))
        if kind == "array":
            out = array(code)
            for column in columns:
                out.extend(column)
            return out
        if kind == "bytes":
            offsets = array("Q", [0])
            chunks = []
            total = 0
            for column in columns:
                base = column.offsets[0]
                for end in column.offsets[1:]:
                    offsets.append(total + end - base)
                chunks.append(column.blob[base : column.offsets[-1]])
                total += column.offsets[-1] - base
            return BytesColumn(offsets, bytes(b"".join(chunks)))
    out = []
    for column in columns:
        out.extend(column)
    return out


def concat_partitions(partitions, width):
    """Concatenate columnar partitions into one, column by column.

    *width* disambiguates the zero-partition case. Row order is
    partition order then intra-partition order -- the same order a
    row-level ``[r for p in partitions for r in p]`` flatten yields.
    """
    partitions = list(partitions)
    if not partitions:
        return ColumnarPartition([[] for _unused in range(width)], 0)
    length = sum(len(p) for p in partitions)
    columns = [
        _concat_column([p.column(i) for p in partitions])
        for i in range(width)
    ]
    return ColumnarPartition(columns, length)


def columns_to_rows(columns, length):
    """Transpose column sequences back into a list of row tuples.

    *length* matters for zero-column tables, where there is no column
    left to count rows from.
    """
    if not columns:
        return [()] * length
    return list(zip(*columns))


class ColumnarPartition:
    """One partition stored column-major.

    ``columns`` is a list of per-column sequences (``array.array``,
    :class:`BytesColumn` or object list), all of the same length.
    Identity semantics (default ``__eq__``/``__hash__``) keep the
    object usable inside frozen plan nodes; compare :meth:`to_rows`
    when value equality is meant.
    """

    __slots__ = ("columns", "_length")

    def __init__(self, columns, length):
        columns = list(columns)
        for column in columns:
            if len(column) != length:
                raise ValueError(
                    "column length {} does not match partition length "
                    "{}".format(len(column), length)
                )
        self.columns = columns
        self._length = length

    @classmethod
    def from_rows(cls, rows, width):
        """Transpose row tuples into typed column buffers."""
        if not rows:
            return cls([[] for _unused in range(width)], 0)
        transposed = list(zip(*rows))
        if len(transposed) != width:
            raise ValueError(
                "rows have width {}, expected {}".format(
                    len(transposed), width
                )
            )
        return cls([_build_column(c) for c in transposed], len(rows))

    def to_rows(self):
        """The exact row tuples this partition was built from."""
        return columns_to_rows(self.columns, self._length)

    def __len__(self):
        return self._length

    @property
    def width(self):
        return len(self.columns)

    def column(self, index):
        return self.columns[index]

    def gather(self, indices):
        """A new partition holding rows ``indices``, in that order.

        The index-level equivalent of selecting rows from
        :meth:`to_rows`: every column is gathered independently through
        :func:`gather_column`, so no intermediate row tuples exist.
        *indices* may be any re-iterable of in-range row positions
        (list, array, range).
        """
        indices = indices if isinstance(indices, (list, range)) else list(indices)
        return ColumnarPartition(
            [gather_column(c, indices) for c in self.columns],
            len(indices),
        )

    def nbytes(self):
        """Approximate buffer footprint (feeds the partition_bytes gauge).

        Typed buffers report their true byte size; object columns are
        charged one pointer per cell (the objects themselves are shared
        with whoever built the partition).
        """
        total = 0
        for column in self.columns:
            if isinstance(column, array):
                total += len(column) * column.itemsize
            elif isinstance(column, memoryview):
                total += column.nbytes
            elif isinstance(column, BytesColumn):
                total += column.nbytes()
            else:
                total += len(column) * 8
        return total

    def __reduce__(self):
        # array.array and BytesColumn pickle natively; memoryview-backed
        # columns (mmap'ed trace sections) must be materialized first.
        columns = [
            array(c.format, c) if isinstance(c, memoryview) else c
            for c in self.columns
        ]
        return (_rebuild_partition, (columns, self._length))


def _rebuild_partition(columns, length):
    return ColumnarPartition(columns, length)


def as_row_partition(partition):
    """Normalize a partition to a list of row tuples."""
    if isinstance(partition, ColumnarPartition):
        return partition.to_rows()
    return partition
