"""Aggregate functions for ``group_by``.

Each aggregate is a picklable dataclass implementing the classic
initialize / update / merge / finish protocol so that partial aggregation
can run inside each shuffle bucket in parallel, the way combiners work in
distributed engines.
"""

from __future__ import annotations

from dataclasses import dataclass


class Aggregate:
    """Base class; subclasses implement the fold protocol."""

    def initial(self):
        raise NotImplementedError

    def update(self, acc, value):
        raise NotImplementedError

    def merge(self, acc_a, acc_b):
        raise NotImplementedError

    def finish(self, acc):
        return acc


@dataclass(frozen=True)
class Count(Aggregate):
    """Number of rows in the group (value column is ignored)."""

    def initial(self):
        return 0

    def update(self, acc, value):
        return acc + 1

    def merge(self, acc_a, acc_b):
        return acc_a + acc_b


@dataclass(frozen=True)
class Sum(Aggregate):
    def initial(self):
        return 0

    def update(self, acc, value):
        return acc + value

    def merge(self, acc_a, acc_b):
        return acc_a + acc_b


@dataclass(frozen=True)
class Min(Aggregate):
    def initial(self):
        return None

    def update(self, acc, value):
        return value if acc is None or value < acc else acc

    def merge(self, acc_a, acc_b):
        if acc_a is None:
            return acc_b
        if acc_b is None:
            return acc_a
        return min(acc_a, acc_b)


@dataclass(frozen=True)
class Max(Aggregate):
    def initial(self):
        return None

    def update(self, acc, value):
        return value if acc is None or value > acc else acc

    def merge(self, acc_a, acc_b):
        if acc_a is None:
            return acc_b
        if acc_b is None:
            return acc_a
        return max(acc_a, acc_b)


@dataclass(frozen=True)
class Mean(Aggregate):
    """Arithmetic mean, tracked as (sum, count) partials."""

    def initial(self):
        return (0.0, 0)

    def update(self, acc, value):
        return (acc[0] + value, acc[1] + 1)

    def merge(self, acc_a, acc_b):
        return (acc_a[0] + acc_b[0], acc_a[1] + acc_b[1])

    def finish(self, acc):
        total, n = acc
        return total / n if n else None


@dataclass(frozen=True)
class First(Aggregate):
    """First value seen in group order (deterministic within a sort)."""

    def initial(self):
        return (False, None)

    def update(self, acc, value):
        return acc if acc[0] else (True, value)

    def merge(self, acc_a, acc_b):
        return acc_a if acc_a[0] else acc_b

    def finish(self, acc):
        return acc[1]


@dataclass(frozen=True)
class Last(Aggregate):
    """Last value seen in group order."""

    def initial(self):
        return (False, None)

    def update(self, acc, value):
        return (True, value)

    def merge(self, acc_a, acc_b):
        return acc_b if acc_b[0] else acc_a

    def finish(self, acc):
        return acc[1]


@dataclass(frozen=True)
class CollectList(Aggregate):
    """Collect all group values into a list (order of arrival)."""

    def initial(self):
        return ()

    def update(self, acc, value):
        return acc + (value,)

    def merge(self, acc_a, acc_b):
        return acc_a + acc_b

    def finish(self, acc):
        return list(acc)


@dataclass(frozen=True)
class CountDistinct(Aggregate):
    """Number of distinct values in the group (exact, set-based)."""

    def initial(self):
        return frozenset()

    def update(self, acc, value):
        return acc | {value}

    def merge(self, acc_a, acc_b):
        return acc_a | acc_b

    def finish(self, acc):
        return len(acc)
