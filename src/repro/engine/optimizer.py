"""Logical plan optimizer.

A small rule-based rewriter applied before execution, mirroring the
always-on optimizations of production dataflow engines:

* **filter fusion** -- adjacent filters combine into one conjunction;
* **project fusion** -- adjacent projections compose into one;
* **filter pushdown** -- a filter above a projection moves below it when
  every column it references is a pure column reference in the
  projection (no recomputation of derived columns);
* **identity-project elimination** -- projections that neither reorder,
  rename nor compute anything are dropped;
* **filter-to-split** -- an equality filter on a materialized source
  (``Filter(Source, key == literal)``) becomes a
  :class:`~repro.engine.plan.SplitByKey` group, so the filter-fan-out
  pattern (one full scan per key value over a shared cached table)
  collapses into a single routed pass served from the executor's split
  cache.

All rewrites operate on *bound* expressions (index-resolved), using
structural substitution; results are provably identical because bound
expressions are pure functions of the row.
"""

from __future__ import annotations

import dataclasses

from repro.engine import plan as logical
from repro.engine.expressions import (
    BoundAnd,
    BoundApply,
    BoundBinary,
    BoundColumn,
    BoundInSet,
    BoundLiteral,
    BoundOr,
    BoundRowApply,
    BoundUnary,
)


def optimize(node, trace=None):
    """Rewrite *node* bottom-up; returns an equivalent, cheaper plan.

    When *trace* is a list, the name of every rule that fires is
    appended to it (``"filter_fusion"``, ``"filter_pushdown"``,
    ``"project_fusion"``, ``"identity_project_elimination"``) -- the
    per-rule equivalence tests use this to assert a plan actually
    exercised the rewrite under test.

    Shared subtrees (plans are DAGs: ``table.union(table)`` references
    one child node twice) are optimized once and reused -- without the
    memo a subtree shared by k self-unions would be rewritten 2^k
    times, and its rule fires double-counted in *trace*.
    """
    return _optimize(node, trace, {})


def _optimize(node, trace, memo):
    done = memo.get(id(node))
    if done is not None:
        return done
    out = _rewrite_children(node, trace, memo)
    while True:
        rewritten = _apply_rules(out, trace)
        if rewritten is out:
            break
        out = rewritten
    memo[id(node)] = out
    return out


def _rewrite_children(node, trace, memo):
    children = node.children()
    if not children:
        return node
    new_children = tuple(_optimize(c, trace, memo) for c in children)
    if new_children == children:
        return node
    if len(children) == 1:
        return dataclasses.replace(node, child=new_children[0])
    return dataclasses.replace(
        node, left=new_children[0], right=new_children[1]
    )


def _apply_rules(node, trace=None):
    if isinstance(node, logical.Filter):
        child = node.child
        if isinstance(child, logical.Filter):
            # Filter fusion: evaluate the lower predicate first.
            _record(trace, "filter_fusion")
            return logical.Filter(
                child.child, BoundAnd(child.predicate, node.predicate)
            )
        if isinstance(child, logical.Project):
            pushed = _push_filter_below_project(node, child)
            if pushed is not None:
                _record(trace, "filter_pushdown")
                return pushed
        if isinstance(child, logical.Source):
            split = _filter_to_split(node, child)
            if split is not None:
                _record(trace, "filter_to_split")
                return split
    if isinstance(node, logical.Project):
        child = node.child
        if isinstance(child, logical.Project):
            _record(trace, "project_fusion")
            composed = tuple(
                substitute(e, child.exprs) for e in node.exprs
            )
            return logical.Project(child.child, node.out_schema, composed)
        if _is_identity_project(node):
            _record(trace, "identity_project_elimination")
            return node.child
    return node


def _record(trace, rule_name):
    if trace is not None:
        trace.append(rule_name)


def _push_filter_below_project(filter_node, project_node):
    """Filter(Project(x)) -> Project(Filter(x)) when safe.

    Safe when each column the predicate references is produced by a pure
    ``BoundColumn`` in the projection -- substitution then renames
    indices without duplicating computed work.
    """
    refs = references(filter_node.predicate)
    for index in refs:
        if not isinstance(project_node.exprs[index], BoundColumn):
            return None
    new_predicate = substitute(filter_node.predicate, project_node.exprs)
    return logical.Project(
        logical.Filter(project_node.child, new_predicate),
        project_node.out_schema,
        project_node.exprs,
    )


def _filter_to_split(filter_node, source):
    """Filter(Source, key == literal) -> SplitByKey(Source, key, literal).

    Recognizes the filter-fan-out pattern: pipelines filter one
    materialized table once per key value, costing one full scan per
    value. As a SplitByKey group the executor routes *all* values in one
    pass and serves sibling groups from its split cache, so N fan-out
    filters cost one shuffle stage. The routing preserves partition
    structure and row order, making the rewrite exactly equivalent (not
    just multiset-equivalent) to the filter.

    Gated to materialized sources -- the shape fan-out call sites
    produce -- so one-off equality filters deep inside narrow chains
    keep their cheap fused execution.
    """
    found = _equality_literal(filter_node.predicate)
    if found is None:
        return None
    index, value = found
    return logical.SplitByKey(source, source.schema.names[index], value)


def _equality_literal(predicate):
    """The ``(column index, literal)`` of a pure equality predicate.

    Returns None for anything but ``column == literal`` (either operand
    order), for unhashable literals (they cannot be routing keys) and
    for non-self-equal literals such as NaN (``NaN == NaN`` is false, so
    the filter keeps nothing, while a NaN routing key could match a row
    by object identity).
    """
    if not (isinstance(predicate, BoundBinary) and predicate.op == "eq"):
        return None
    left, right = predicate.left, predicate.right
    if isinstance(left, BoundColumn) and isinstance(right, BoundLiteral):
        index, value = left.index, right.value
    elif isinstance(right, BoundColumn) and isinstance(left, BoundLiteral):
        index, value = right.index, left.value
    else:
        return None
    try:
        if not value == value:
            return None
    except Exception:
        return None
    try:
        hash(value)
    except TypeError:
        return None
    return index, value


def _is_identity_project(node):
    child_schema = node.child.schema
    if node.out_schema.names != child_schema.names:
        return False
    return all(
        isinstance(e, BoundColumn) and e.index == i
        for i, e in enumerate(node.exprs)
    )


# ---------------------------------------------------------------------------
# Bound-expression structural tools
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ComposedApply:
    """A BoundApply whose inputs are arbitrary bound sub-expressions.

    Produced by project fusion when a computed column feeds a function
    column; keeps the fused projection a single pass over the row.
    """

    func: object
    producers: tuple

    def __call__(self, row):
        return self.func(*(p(row) for p in self.producers))


@dataclasses.dataclass(frozen=True)
class ComposedRowApply:
    """A BoundRowApply over a virtual row built from sub-expressions."""

    func: object
    names: tuple
    producers: tuple

    def __call__(self, row):
        return self.func(
            dict(zip(self.names, (p(row) for p in self.producers)))
        )


def references(expr):
    """Set of column indices a bound expression reads."""
    if isinstance(expr, BoundColumn):
        return {expr.index}
    if isinstance(expr, BoundLiteral):
        return set()
    if isinstance(expr, (BoundBinary, BoundAnd, BoundOr)):
        return references(expr.left) | references(expr.right)
    if isinstance(expr, BoundUnary):
        return references(expr.operand)
    if isinstance(expr, BoundInSet):
        return references(expr.operand)
    if isinstance(expr, BoundApply):
        return set(expr.indices)
    if isinstance(expr, (ComposedApply, ComposedRowApply)):
        out = set()
        for producer in expr.producers:
            out |= references(producer)
        return out
    if isinstance(expr, BoundRowApply):
        # Reads the whole row; every column counts as referenced.
        return set(range(len(expr.names)))
    raise TypeError("unknown bound expression {!r}".format(type(expr).__name__))


def substitute(expr, exprs):
    """Replace each column reference *i* in *expr* by ``exprs[i]``."""
    if isinstance(expr, BoundColumn):
        return exprs[expr.index]
    if isinstance(expr, BoundLiteral):
        return expr
    if isinstance(expr, BoundBinary):
        return BoundBinary(
            expr.op, substitute(expr.left, exprs), substitute(expr.right, exprs)
        )
    if isinstance(expr, BoundAnd):
        return BoundAnd(
            substitute(expr.left, exprs), substitute(expr.right, exprs)
        )
    if isinstance(expr, BoundOr):
        return BoundOr(
            substitute(expr.left, exprs), substitute(expr.right, exprs)
        )
    if isinstance(expr, BoundUnary):
        return BoundUnary(expr.op, substitute(expr.operand, exprs))
    if isinstance(expr, BoundInSet):
        return BoundInSet(substitute(expr.operand, exprs), expr.values)
    if isinstance(expr, BoundApply):
        producers = tuple(exprs[i] for i in expr.indices)
        if all(isinstance(p, BoundColumn) for p in producers):
            return BoundApply(expr.func, tuple(p.index for p in producers))
        return ComposedApply(expr.func, producers)
    if isinstance(expr, ComposedApply):
        return ComposedApply(
            expr.func, tuple(substitute(p, exprs) for p in expr.producers)
        )
    if isinstance(expr, ComposedRowApply):
        return ComposedRowApply(
            expr.func,
            expr.names,
            tuple(substitute(p, exprs) for p in expr.producers),
        )
    if isinstance(expr, BoundRowApply):
        return ComposedRowApply(
            expr.func,
            expr.names,
            tuple(exprs[i] for i in range(len(expr.names))),
        )
    raise TypeError("unknown bound expression {!r}".format(type(expr).__name__))
