"""Windowed (ordered) operators built on ``sorted_map_partitions``.

These cover the ordered-sequence needs of the paper's pipeline:

* ``with_lag`` -- value of a column in the previous row (per optional
  group), used for temporal-gap extensions (Table 2 of the paper);
* ``with_gap`` -- numeric difference to the previous row's value;
* ``drop_consecutive_duplicates`` -- the unchanged-value reduction the
  evaluation section applies ("identical subsequent signal instances are
  removed as reduction");
* ``forward_fill`` -- carry the last seen value forward, used to build the
  state representation (Table 4).

All partition functions are picklable dataclasses so they run on the
multiprocessing executor.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LagFunction:
    """Append the previous row's value of ``value_index`` to each row.

    When ``group_indices`` is non-empty the lag restarts whenever the
    group key changes, which assumes the table is sorted by the group
    columns first and the ordering column second.
    """

    value_index: int
    group_indices: tuple
    default: object = None

    def __call__(self, partition, carry):
        out = []
        prev_row = carry[-1] if carry else None
        for row in partition:
            if prev_row is not None and self._same_group(prev_row, row):
                lagged = prev_row[self.value_index]
            else:
                lagged = self.default
            out.append(row + (lagged,))
            prev_row = row
        return out

    def _same_group(self, a, b):
        return all(a[i] == b[i] for i in self.group_indices)


@dataclass(frozen=True)
class GapFunction:
    """Append the numeric difference to the previous row's value."""

    value_index: int
    group_indices: tuple
    default: object = None

    def __call__(self, partition, carry):
        out = []
        prev_row = carry[-1] if carry else None
        for row in partition:
            if prev_row is not None and all(
                prev_row[i] == row[i] for i in self.group_indices
            ):
                gap = row[self.value_index] - prev_row[self.value_index]
            else:
                gap = self.default
            out.append(row + (gap,))
            prev_row = row
        return out


@dataclass(frozen=True)
class DropConsecutiveDuplicates:
    """Drop rows whose compared columns equal the previous row's.

    ``compare_indices`` lists the columns that must all be equal for the
    row to count as a repeat; ``group_indices`` scopes the comparison to
    runs of the same group (a value change in another signal type must not
    mask a repeat).
    """

    compare_indices: tuple
    group_indices: tuple

    def __call__(self, partition, carry):
        out = []
        prev_row = carry[-1] if carry else None
        for row in partition:
            is_repeat = (
                prev_row is not None
                and all(prev_row[i] == row[i] for i in self.group_indices)
                and all(prev_row[i] == row[i] for i in self.compare_indices)
            )
            if not is_repeat:
                out.append(row)
            prev_row = row
        return out


@dataclass(frozen=True)
class ForwardFill:
    """Replace None values with the last non-None value per column.

    ``fill_indices`` lists columns to fill. Assumes a global sort by the
    ordering column; carry rows let the fill continue across partitions.
    """

    fill_indices: tuple

    def __call__(self, partition, carry):
        last = {}
        for row in carry:
            for i in self.fill_indices:
                if row[i] is not None:
                    last[i] = row[i]
        out = []
        for row in partition:
            values = list(row)
            for i in self.fill_indices:
                if values[i] is None:
                    values[i] = last.get(i)
                else:
                    last[i] = values[i]
            out.append(tuple(values))
        return out


def with_lag(table, order_by, value_column, output_column, group_by=(), default=None):
    """Sort *table* and append the previous row's *value_column*.

    Returns a new table with *output_column* appended. Grouping columns,
    if given, reset the lag at group boundaries.
    """
    groups = [group_by] if isinstance(group_by, str) else list(group_by)
    ordered = table.sort(groups + [order_by])
    schema = ordered.schema
    func = LagFunction(
        schema.index_of(value_column),
        tuple(schema.index_of(g) for g in groups),
        default,
    )
    return ordered.sorted_map_partitions(
        func, output_columns=list(schema.names) + [output_column], carry_rows=1
    )


def with_gap(table, order_by, value_column, output_column, group_by=(), default=None):
    """Sort *table* and append the difference to the previous row's value."""
    groups = [group_by] if isinstance(group_by, str) else list(group_by)
    ordered = table.sort(groups + [order_by])
    schema = ordered.schema
    func = GapFunction(
        schema.index_of(value_column),
        tuple(schema.index_of(g) for g in groups),
        default,
    )
    return ordered.sorted_map_partitions(
        func, output_columns=list(schema.names) + [output_column], carry_rows=1
    )


def drop_consecutive_duplicates(table, order_by, compare, group_by=()):
    """Sort *table* and drop rows repeating the previous row's values."""
    groups = [group_by] if isinstance(group_by, str) else list(group_by)
    compares = [compare] if isinstance(compare, str) else list(compare)
    ordered = table.sort(groups + [order_by])
    schema = ordered.schema
    func = DropConsecutiveDuplicates(
        tuple(schema.index_of(c) for c in compares),
        tuple(schema.index_of(g) for g in groups),
    )
    return ordered.sorted_map_partitions(func, carry_rows=1)


def forward_fill(table, order_by, columns):
    """Sort *table* by *order_by* and forward-fill None in *columns*."""
    ordered = table.sort([order_by])
    schema = ordered.schema
    func = ForwardFill(tuple(schema.index_of(c) for c in columns))
    # A single carry row is not enough: the previous non-None value for a
    # sparsely occurring column may be many rows back, so fills restart per
    # partition unless the executor passes a deep carry. We use a large
    # carry window; exactness for arbitrarily sparse columns is ensured by
    # callers that coalesce first (see representation module).
    return ordered.sorted_map_partitions(func, carry_rows=100_000)
