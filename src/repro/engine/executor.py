"""Plan executors.

Two executors share one physical planning strategy:

* :class:`SerialExecutor` runs every task in the driver process. It is the
  reference implementation and stands in for single-machine tools.
* :class:`MultiprocessingExecutor` runs per-partition tasks on a pool of
  worker processes, standing in for the Spark cluster of the paper. Tasks
  and partitions are pickled to workers, so every function reaching the
  executor must be picklable (module-level functions or dataclasses).

Both produce identical results for identical plans; determinism is part of
the framework's contract (Sec. 1 of the paper, "Preserving determinism").
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import zlib
from dataclasses import dataclass, field

from repro.engine import codegen
from repro.engine import plan as logical
from repro.engine.columnar import ColumnarPartition, as_row_partition
from repro.engine.errors import (
    ExecutionError,
    InjectedFaultError,
    PlanError,
    TaskError,
)
from repro.engine.operations import (
    BroadcastJoinTask,
    BucketAggregateTask,
    BucketJoinTask,
    CarryMapTask,
    FilterStep,
    FlatMapStep,
    MapPartitionStep,
    PartitionTask,
    ProjectStep,
    SortPartitionTask,
    SplitRouteTask,
    hash_partition,
    split_evenly,
)
from repro.obs import MetricsRegistry, RuleFireCounter, stopwatch

#: Right-side row-count limit under which joins are broadcast instead of
#: shuffled. Parameter catalogs (U_rel) are tiny, so in practice the
#: interpretation join of Algorithm 1 is always a broadcast join, exactly
#: the plan Spark would choose.
BROADCAST_THRESHOLD = 20_000


#: Counter names every executor pre-creates (so run reports always show
#: them, zero-valued, even for runs that never retried or shuffled).
_EXECUTOR_COUNTERS = (
    "tasks_run",
    "shuffles",
    "broadcast_joins",
    "rows_shuffled",
    "retries",
    "faults_injected",
    "splits",
    "split_groups",
    "split_rows",
    "split_cache_hits",
    "kernels_compiled",
    "kernel_cache_hits",
    "kernel_fallbacks",
    "columnar_tasks",
    "columnar_fallbacks",
)

#: Entries kept in the per-executor split cache (materialized routings
#: of SplitByKey children). Small: each entry holds one full copy of a
#: (usually already cached) source table, grouped.
_SPLIT_CACHE_MAX = 8


class ExecutorMetrics:
    """Counters accumulated across one executor's lifetime.

    A read-only view over the executor's :class:`MetricsRegistry`
    (``executor.obs``), kept for its established attribute API
    (``metrics.retries`` etc.); new counters/gauges/histograms live on
    the registry directly and flow into run reports from there.
    """

    def __init__(self, registry=None):
        self.registry = registry if registry is not None else MetricsRegistry()
        for name in _EXECUTOR_COUNTERS:
            self.registry.counter("executor." + name)

    def _value(self, name):
        return self.registry.counter("executor." + name).value

    @property
    def tasks_run(self):
        return self._value("tasks_run")

    @property
    def shuffles(self):
        return self._value("shuffles")

    @property
    def broadcast_joins(self):
        return self._value("broadcast_joins")

    @property
    def rows_shuffled(self):
        return self._value("rows_shuffled")

    @property
    def retries(self):
        return self._value("retries")

    @property
    def faults_injected(self):
        return self._value("faults_injected")

    @property
    def splits(self):
        return self._value("splits")

    @property
    def split_groups(self):
        return self._value("split_groups")

    @property
    def split_rows(self):
        return self._value("split_rows")

    @property
    def split_cache_hits(self):
        return self._value("split_cache_hits")

    @property
    def kernels_compiled(self):
        return self._value("kernels_compiled")

    @property
    def kernel_cache_hits(self):
        return self._value("kernel_cache_hits")

    @property
    def kernel_fallbacks(self):
        return self._value("kernel_fallbacks")

    @property
    def columnar_tasks(self):
        return self._value("columnar_tasks")

    @property
    def columnar_fallbacks(self):
        return self._value("columnar_fallbacks")

    def reset(self):
        for name in _EXECUTOR_COUNTERS:
            self.registry.counter("executor." + name).value = 0


@dataclass(frozen=True)
class FaultPolicy:
    """Deterministic fault injection for per-partition tasks.

    A policy decides, per ``(stage, partition)`` coordinate, whether a
    task crashes (raises :class:`InjectedFaultError` on its first
    ``crashes_per_task`` attempts), is delayed, or is *poisoned* (its
    output is silently corrupted -- used by the differential harness to
    prove the oracle catches divergence; never enable in production).

    Decisions are derived from a CRC32 of the seeded coordinate string,
    not from :func:`hash`, so they are stable across worker processes
    and interpreter runs. A crashed task with ``crashes_per_task`` less
    than or equal to the executor's retry budget always succeeds on a
    later attempt, which makes fault-equivalence tests deterministic.
    """

    crash_rate: float = 0.0
    delay_rate: float = 0.0
    poison_rate: float = 0.0
    seed: int = 0
    crashes_per_task: int = 1
    delay_seconds: float = 0.001

    def __post_init__(self):
        for name in ("crash_rate", "delay_rate", "poison_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError("{} must be in [0, 1]".format(name))
        if self.crashes_per_task < 1:
            raise ValueError("crashes_per_task must be >= 1")

    def _roll(self, kind, stage, partition):
        key = "{}|{}|{}|{}".format(self.seed, kind, stage, partition)
        return (zlib.crc32(key.encode("utf-8")) % 100_000) / 100_000.0

    def crashes_for(self, stage, partition):
        """Number of leading attempts of this task that must crash."""
        if self._roll("crash", stage, partition) < self.crash_rate:
            return self.crashes_per_task
        return 0

    def should_delay(self, stage, partition):
        return self._roll("delay", stage, partition) < self.delay_rate

    def should_poison(self, stage, partition):
        return self._roll("poison", stage, partition) < self.poison_rate

    def run(self, stage, partition, attempt, task, x):
        """Run one attempt of *task* on *x* under this policy."""
        if attempt < self.crashes_for(stage, partition):
            raise InjectedFaultError(
                "injected crash in stage {!r} partition {} attempt {}".format(
                    stage, partition, attempt
                )
            )
        if self.should_delay(stage, partition):
            time.sleep(self.delay_seconds)
        out = task(x)
        if self.should_poison(stage, partition) and isinstance(out, list) and out:
            out = out[:-1]
        return out


@dataclass(frozen=True)
class _FaultingTask:
    """Picklable wrapper running one task attempt under a FaultPolicy."""

    task: object
    policy: FaultPolicy
    stage: str
    partition: int
    attempt: int

    def __call__(self, x):
        return self.policy.run(
            self.stage, self.partition, self.attempt, self.task, x
        )


class Executor:
    """Base executor: physical planning plus a task-running strategy.

    Parameters
    ----------
    default_parallelism:
        Partition count used for shuffles and splits.
    optimize_plans:
        When False the logical optimizer is skipped entirely; the
        differential harness uses this to compare optimized against
        unoptimized execution of the same plan.
    fault_policy:
        Optional :class:`FaultPolicy` injecting crashes/delays/poison
        into per-partition tasks.
    max_task_retries:
        How many times a failed per-partition task is retried before the
        stage fails with a structured :class:`TaskError`.
    retry_backoff:
        Base sleep (seconds) between retries; doubles per attempt.
    compile_kernels:
        When True (the default, overridable through the
        ``REPRO_KERNELS`` environment variable -- see
        :mod:`repro.engine.codegen`), fused narrow chains run as
        generated per-partition kernels; False restores the
        interpreted :class:`~repro.engine.operations.PartitionTask`
        path. None resolves from the environment.
    columnar_kernels:
        When True (the default, overridable through ``REPRO_COLUMNAR``),
        pure Filter/Project chains compile to columnar batch kernels
        that loop over column buffers; chains that do not lower fall
        back to the row path (counted as ``executor.columnar_fallbacks``).
        Requires ``compile_kernels``; None resolves from the environment.
    """

    def __init__(self, default_parallelism=4, optimize_plans=True,
                 fault_policy=None, max_task_retries=2, retry_backoff=0.01,
                 compile_kernels=None, columnar_kernels=None):
        if default_parallelism < 1:
            raise ValueError("default_parallelism must be >= 1")
        if max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")
        self.default_parallelism = default_parallelism
        self.optimize_plans = optimize_plans
        self.fault_policy = fault_policy
        self.max_task_retries = max_task_retries
        self.retry_backoff = retry_backoff
        self.compile_kernels = codegen.kernels_enabled(compile_kernels)
        self.columnar_kernels = codegen.columnar_enabled(columnar_kernels)
        self.obs = MetricsRegistry()
        self.metrics = ExecutorMetrics(self.obs)
        self._stage_seq = 0
        self._split_cache = {}

    # -- task running (strategy implemented by subclasses) ---------------
    def run_tasks(self, task, inputs, stage="task"):
        raise NotImplementedError

    def _attempt_task(self, task, x, stage, index, attempt):
        """One attempt of *task* on partition *index*, fault-injected."""
        if self.fault_policy is None:
            return task(x)
        return _FaultingTask(task, self.fault_policy, stage, index, attempt)(x)

    def _run_partition_with_retries(self, task, x, stage, index):
        """Run one partition task, retrying injected faults with backoff.

        Genuine task exceptions propagate immediately (a deterministic
        bug does not become less buggy by retrying in-process); injected
        faults model transient worker loss and are retried up to
        ``max_task_retries`` times.
        """
        attempts = self.max_task_retries + 1
        last_exc = None
        for attempt in range(attempts):
            try:
                return self._attempt_task(task, x, stage, index, attempt)
            except InjectedFaultError as exc:
                last_exc = exc
                self.obs.inc("executor.faults_injected")
                if attempt < attempts - 1:
                    self.obs.inc("executor.retries")
                    if self.retry_backoff:
                        time.sleep(self.retry_backoff * (2 ** attempt))
        raise TaskError(
            "task failed after {} attempts in stage {!r} partition {}: {}".format(
                attempts, stage, index, last_exc
            ),
            stage=stage,
            partition=index,
            attempts=attempts,
            cause=last_exc,
        )

    def _timed_partition(self, task, x, stage, index):
        """Run one partition (with retries), observing its duration.

        Returns ``(result, seconds)``; the duration lands in the
        ``executor.task_seconds`` histograms (global and per stage
        kind), which is where run reports read per-partition task
        timings from.
        """
        with stopwatch() as watch:
            result = self._run_partition_with_retries(task, x, stage, index)
        self._observe_task(stage, watch.seconds, task=task)
        return result, watch.seconds

    def _observe_task(self, stage, seconds, task=None):
        kind = stage.split("[", 1)[0]
        self.obs.observe("executor.task_seconds", seconds)
        self.obs.observe("executor.task_seconds.{}".format(kind), seconds)
        kernel_id = getattr(task, "kernel_id", "")
        if kernel_id:
            self.obs.observe("executor.kernel_run_seconds", seconds)
            self.obs.observe(
                "executor.kernel_run_seconds.{}".format(kernel_id), seconds
            )

    def reset_stage_clock(self):
        """Restart stage numbering at zero.

        Stage labels embed a monotonic sequence number, and
        :class:`FaultPolicy` decisions key on the full label -- so on a
        long-lived executor the fault pattern of a plan depends on how
        many stages ran before it. Harnesses that replay cases on cached
        executors (the differential oracle, the shrinker) reset the
        clock per case to make fault injection a pure function of the
        case.
        """
        self._stage_seq = 0

    def close(self):
        """Release worker resources (no-op for serial execution)."""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # -- physical planning -----------------------------------------------
    def execute(self, node):
        """Materialize a plan node into a list of row-tuple partitions."""
        from repro.engine.optimizer import optimize

        if self.optimize_plans:
            node = optimize(node, trace=RuleFireCounter(self.obs))
        base, steps = self._linearize(node)
        partitions = self._execute_wide(base)
        columnar_bytes = sum(
            p.nbytes() for p in partitions
            if isinstance(p, ColumnarPartition)
        )
        if columnar_bytes:
            self.obs.set_gauge("executor.partition_bytes", columnar_bytes)
        if steps:
            task = self._narrow_task(steps, input_width=len(base.schema))
            partitions = self._run(task, partitions, "narrow")
        # Row lists are the engine's output (and inter-stage) currency;
        # columnar partitions surface unconverted only when a bare
        # columnar Source reaches this point.
        return [as_row_partition(p) for p in partitions]

    def _narrow_task(self, steps, input_width=None):
        """Build the fused per-partition task for a narrow chain.

        Columnar batch kernels are tried first (pure Filter/Project
        chains; ``columnar_kernels``), then row kernels; the interpreted
        :class:`PartitionTask` serves as the explicit fallback
        (``compile_kernels=False`` / ``REPRO_KERNELS=interpret``), for
        chains with nothing to compile, and -- counted as
        ``executor.kernel_fallbacks`` -- when lowering fails.
        """
        steps = tuple(steps)
        if (
            self.compile_kernels
            and self.columnar_kernels
            and input_width is not None
        ):
            try:
                task = codegen.compile_columnar_task(
                    steps, input_width, registry=self.obs
                )
            except codegen.CodegenError:
                self.obs.inc("executor.columnar_fallbacks")
                task = None
            if task is not None:
                self.obs.inc("executor.columnar_tasks")
                return task
        if self.compile_kernels:
            try:
                task = codegen.compile_partition_task(
                    steps, registry=self.obs
                )
            except codegen.CodegenError:
                self.obs.inc("executor.kernel_fallbacks")
                task = None
            if task is not None:
                return task
        return PartitionTask(steps)

    def _run(self, task, inputs, stage="stage"):
        label = "{}[{}]".format(stage, self._stage_seq)
        self._stage_seq += 1
        self.obs.inc("executor.tasks_run", len(inputs))
        try:
            with stopwatch() as watch:
                outputs = self.run_tasks(task, inputs, stage=label)
        except ExecutionError:
            raise
        except Exception as exc:
            raise ExecutionError("task execution failed: {}".format(exc), exc)
        self.obs.observe("executor.stage_seconds.{}".format(stage),
                         watch.seconds)
        return outputs

    @staticmethod
    def _linearize(node):
        """Peel the chain of narrow ops above the first wide node."""
        steps = []
        while node.narrow:
            steps.append(_narrow_step(node))
            node = node.child
        steps.reverse()
        return node, steps

    def _execute_wide(self, node):
        if isinstance(node, logical.Source):
            # Columnar source partitions pass through untouched (they
            # are read-only by contract); row partitions are copied so
            # tasks can never alias a caller's list.
            return [
                p if isinstance(p, ColumnarPartition) else list(p)
                for p in node.partitions
            ]
        if isinstance(node, logical.Join):
            return self._execute_join(node)
        if isinstance(node, logical.Union):
            return self.execute(node.left) + self.execute(node.right)
        if isinstance(node, logical.GroupBy):
            return self._execute_group_by(node)
        if isinstance(node, logical.Sort):
            return self._execute_sort(node)
        if isinstance(node, logical.Repartition):
            return self._execute_repartition(node)
        if isinstance(node, logical.SortedMapPartitions):
            return self._execute_sorted_map(node)
        if isinstance(node, logical.Limit):
            return self._execute_limit(node)
        if isinstance(node, logical.SplitByKey):
            groups, num_partitions = self._split_groups(node.child, node.key)
            parts = groups.get(node.group)
            if parts is None:
                return [[] for _unused in range(num_partitions)]
            return [list(p) for p in parts]
        raise PlanError("unknown plan node {!r}".format(type(node).__name__))

    def _execute_join(self, node):
        left_parts = self.execute(node.left)
        right_parts = self.execute(node.right)
        left_schema = node.left.schema
        right_schema = node.right.schema
        left_keys = tuple(left_schema.index_of(k) for k in node.left_keys)
        right_keys = tuple(right_schema.index_of(k) for k in node.right_keys)
        right_width = len(right_schema) - len(right_keys)
        right_rows = [r for p in right_parts for r in p]
        if len(right_rows) <= BROADCAST_THRESHOLD:
            self.obs.inc("executor.broadcast_joins")
            index = {}
            drop = set(right_keys)
            for row in right_rows:
                key = tuple(row[i] for i in right_keys)
                rem = tuple(v for i, v in enumerate(row) if i not in drop)
                index.setdefault(key, []).append(rem)
            task = BroadcastJoinTask(left_keys, index, node.how, right_width)
            return self._run(task, left_parts, "broadcast-join")
        # Large right side: hash-shuffle both sides into aligned buckets.
        self.obs.inc("executor.shuffles")
        buckets = max(self.default_parallelism, 1)
        left_rows = [r for p in left_parts for r in p]
        self.obs.inc("executor.rows_shuffled", len(left_rows) + len(right_rows))
        left_buckets = hash_partition(left_rows, left_keys, buckets)
        right_buckets = hash_partition(right_rows, right_keys, buckets)
        task = BucketJoinTask(
            left_keys, right_keys, right_keys, node.how, right_width
        )
        return self._run(
            task, list(zip(left_buckets, right_buckets)), "bucket-join"
        )

    def _execute_group_by(self, node):
        child_parts = self.execute(node.child)
        schema = node.child.schema
        key_indices = tuple(schema.index_of(k) for k in node.keys)
        bound_aggs = tuple(
            (agg, schema.index_of(column) if column is not None else None)
            for _name, agg, column in node.aggregates
        )
        rows = [r for p in child_parts for r in p]
        if not key_indices:
            # Global aggregation: one group, one output row.
            task = BucketAggregateTask((), bound_aggs)
            return [task(rows)]
        self.obs.inc("executor.shuffles")
        self.obs.inc("executor.rows_shuffled", len(rows))
        buckets = hash_partition(
            rows, key_indices, max(self.default_parallelism, 1)
        )
        task = BucketAggregateTask(key_indices, bound_aggs)
        return self._run(task, buckets, "group-by")

    def _execute_sort(self, node):
        child_parts = self.execute(node.child)
        schema = node.child.schema
        key_indices = tuple(schema.index_of(k) for k in node.keys)
        rows = [r for p in child_parts for r in p]
        self.obs.inc("executor.shuffles")
        self.obs.inc("executor.rows_shuffled", len(rows))
        task = SortPartitionTask(key_indices, node.ascending)
        # Routed through the task runner so cost models charge the sort
        # as one (serial) task; executors with a single input run it in
        # the driver anyway.
        [ordered] = self._run(task, [rows], "sort")
        return split_evenly(ordered, self.default_parallelism)

    def _execute_repartition(self, node):
        child_parts = self.execute(node.child)
        rows = [r for p in child_parts for r in p]
        self.obs.inc("executor.shuffles")
        self.obs.inc("executor.rows_shuffled", len(rows))
        if node.keys:
            schema = node.child.schema
            key_indices = tuple(schema.index_of(k) for k in node.keys)
            return hash_partition(rows, key_indices, node.num_partitions)
        return split_evenly(rows, node.num_partitions)

    def _execute_limit(self, node):
        child_parts = self.execute(node.child)
        remaining = node.n
        out = []
        for part in child_parts:
            if remaining <= 0:
                out.append([])
            elif len(part) <= remaining:
                out.append(list(part))
                remaining -= len(part)
            else:
                out.append(list(part[:remaining]))
                remaining = 0
        return out

    # -- single-pass split (SplitByKey) ----------------------------------
    def execute_split(self, node, key, keys=None):
        """Split *node*'s rows by the *key* column in one routed pass.

        Returns ``(groups, num_partitions)`` where *groups* maps each
        key value to its list of partitions, co-partitioned with the
        input (group partition ``i`` holds the rows of input partition
        ``i`` with that key value, in order). When *keys* is given the
        result holds exactly those keys in that order, with absent keys
        mapped to empty partition lists; otherwise keys are discovered
        from the data. Partition lists may be shared with the split
        cache -- treat them as read-only.
        """
        groups, num_partitions = self._split_groups(node, key)
        if keys is None:
            return dict(groups), num_partitions
        out = {}
        for value in keys:
            parts = groups.get(value)
            if parts is None:
                parts = [[] for _unused in range(num_partitions)]
            out[value] = parts
        return out, num_partitions

    def _split_groups(self, child, key):
        """Route *child*'s rows by *key* into per-value groups, cached.

        The routing is one task per child partition (stage kind
        ``split``, subject to fault injection and the normal retry
        budget) followed by a driver-side regroup. Results are cached
        per ``(child plan, key)`` so sibling ``SplitByKey`` nodes -- and
        repeated filter fan-outs rewritten by the optimizer -- reuse one
        shuffle stage instead of rescanning the child per group.
        """
        cache_key = self._split_cache_key(child, key)
        if cache_key is not None:
            cached = self._split_cache.get(cache_key)
            if cached is not None:
                self.obs.inc("executor.split_cache_hits")
                return cached
        child_parts = self.execute(child)
        key_index = child.schema.index_of(key)
        routed = self._run(SplitRouteTask(key_index), child_parts, "split")
        num_partitions = len(child_parts)
        groups = {}
        total_rows = 0
        for part_index, pairs in enumerate(routed):
            total_rows += len(pairs)
            for group, row in pairs:
                parts = groups.get(group)
                if parts is None:
                    parts = groups[group] = [
                        [] for _unused in range(num_partitions)
                    ]
                parts[part_index].append(row)
        self.obs.inc("executor.shuffles")
        self.obs.inc("executor.rows_shuffled", total_rows)
        self.obs.inc("executor.splits")
        self.obs.inc("executor.split_groups", len(groups))
        self.obs.inc("executor.split_rows", total_rows)
        result = (groups, num_partitions)
        if cache_key is not None:
            if len(self._split_cache) >= _SPLIT_CACHE_MAX:
                self._split_cache.pop(next(iter(self._split_cache)))
            self._split_cache[cache_key] = result
        return result

    @staticmethod
    def _split_cache_key(child, key):
        """Cache key for a split routing, or None when uncacheable.

        Plan nodes are frozen dataclasses over immutable data, so
        structural equality identifies reusable routings; a child
        holding an unhashable payload simply bypasses the cache.
        """
        try:
            hash(child)
        except TypeError:
            return None
        return (child, key)

    def _execute_sorted_map(self, node):
        child_parts = self.execute(node.child)
        tail = max(node.carry_rows, 0)
        carries = []
        previous = []
        for part in child_parts:
            carries.append(previous)
            if tail:
                # Keep the global tail so short or empty partitions still
                # pass the right carry rows downstream.
                previous = (previous + list(part))[-tail:]
        task = CarryMapTask(node.func)
        return self._run(task, list(zip(child_parts, carries)), "sorted-map")


def _narrow_step(node):
    if isinstance(node, logical.Filter):
        return FilterStep(node.predicate)
    if isinstance(node, logical.Project):
        return ProjectStep(node.exprs)
    if isinstance(node, logical.FlatMap):
        return FlatMapStep(node.func)
    if isinstance(node, logical.MapPartitions):
        return MapPartitionStep(node.func)
    raise PlanError(
        "node {!r} is marked narrow but has no physical step".format(
            type(node).__name__
        )
    )


class SerialExecutor(Executor):
    """Run every task in the driver process, one partition at a time."""

    def run_tasks(self, task, inputs, stage="task"):
        return [
            self._timed_partition(task, x, stage, i)[0]
            for i, x in enumerate(inputs)
        ]


class SimulatedClusterExecutor(SerialExecutor):
    """Serial execution with a measured cluster-makespan cost model.

    The reproduction's stand-in for the paper's 70-node Spark cluster on
    hosts without real parallelism: every per-partition task runs
    serially (results are bit-identical to :class:`SerialExecutor`), but
    each task's wall time is measured and the executor accumulates the
    *makespan* that ``num_workers`` parallel workers would need --
    longest-processing-time-first assignment of the measured task
    durations, plus a fixed per-stage coordination latency.

    ``simulated_seconds`` is therefore an evidence-based estimate of the
    distributed wall time, derived from real single-core execution. The
    benchmarks report it alongside the raw wall time.
    """

    def __init__(self, num_workers=10, stage_latency=0.001,
                 default_parallelism=None, **kwargs):
        if default_parallelism is None:
            default_parallelism = num_workers
        super().__init__(default_parallelism=default_parallelism, **kwargs)
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.stage_latency = stage_latency
        self.simulated_seconds = 0.0
        #: Sum of raw task durations (no makespan division); wall time
        #: minus this is driver-side work not covered by the model.
        self.serial_task_seconds = 0.0

    def reset_clock(self):
        self.simulated_seconds = 0.0
        self.serial_task_seconds = 0.0

    def run_tasks(self, task, inputs, stage="task"):
        if not inputs:
            # A zero-partition stage schedules no tasks; charging the
            # per-stage coordination latency for it would make empty
            # stages cost a full stage_latency each.
            return []
        outputs = []
        durations = []
        for i, x in enumerate(inputs):
            output, seconds = self._timed_partition(task, x, stage, i)
            outputs.append(output)
            durations.append(seconds)
        self.simulated_seconds += self._makespan(durations) + self.stage_latency
        self.serial_task_seconds += sum(durations)
        return outputs

    def _makespan(self, durations):
        """LPT greedy assignment of task durations to workers."""
        loads = [0.0] * self.num_workers
        for duration in sorted(durations, reverse=True):
            index = loads.index(min(loads))
            loads[index] += duration
        return max(loads) if loads else 0.0


class MultiprocessingExecutor(Executor):
    """Run per-partition tasks on a pool of forked worker processes.

    This is the stand-in for the paper's Spark cluster: partitions are the
    unit of parallelism and tasks are shipped (pickled) to workers. The
    pool is created lazily on first use and should be released with
    :meth:`close` (or by using the executor as a context manager).
    """

    def __init__(self, num_workers=None, default_parallelism=None, **kwargs):
        if num_workers is None:
            num_workers = max(2, (os.cpu_count() or 2) - 1)
        if default_parallelism is None:
            default_parallelism = num_workers
        super().__init__(default_parallelism=default_parallelism, **kwargs)
        self.num_workers = num_workers
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            ctx = multiprocessing.get_context("fork")
            self._pool = ctx.Pool(processes=self.num_workers)
        return self._pool

    def run_tasks(self, task, inputs, stage="task"):
        if len(inputs) <= 1:
            # Not worth a round-trip through the pool.
            return [
                self._timed_partition(task, x, stage, i)[0]
                for i, x in enumerate(inputs)
            ]
        pool = self._ensure_pool()
        # Fail fast (and without burning retries) on unpicklable tasks:
        # nested functions raise AttributeError and exotic objects
        # TypeError from pickle, which are indistinguishable from
        # genuine worker exceptions once they come back from the pool.
        try:
            blob = pickle.dumps(task)
        except Exception as exc:
            raise ExecutionError(
                "task for stage {!r} is not picklable: {} "
                "(use module-level functions or dataclasses, "
                "not lambdas or closures)".format(stage, exc),
                exc,
            )
        self.obs.set_gauge("executor.pickle_task_bytes", len(blob))
        self.obs.gauge("executor.pickle_task_bytes_max").set_max(len(blob))
        self.obs.observe("executor.pickle_task_bytes_hist", len(blob))
        results = [None] * len(inputs)
        pending = list(range(len(inputs)))
        attempts = self.max_task_retries + 1
        last_errors = {}
        for attempt in range(attempts):
            handles = []
            for i in pending:
                call = task
                if self.fault_policy is not None:
                    call = _FaultingTask(
                        task, self.fault_policy, stage, i, attempt
                    )
                handles.append((i, pool.apply_async(call, (inputs[i],))))
            failed = []
            for i, handle in handles:
                try:
                    results[i] = handle.get()
                except pickle.PicklingError as exc:
                    raise ExecutionError(
                        "task for stage {!r} is not picklable: {} "
                        "(use module-level functions or dataclasses, "
                        "not lambdas or closures)".format(stage, exc),
                        exc,
                    )
                except Exception as exc:
                    # Worker loss is transient by assumption; genuine
                    # task bugs fail identically on every attempt and
                    # exhaust the (bounded) retry budget quickly.
                    failed.append(i)
                    last_errors[i] = exc
                    if isinstance(exc, InjectedFaultError):
                        self.obs.inc("executor.faults_injected")
            if not failed:
                return results
            pending = failed
            if attempt < attempts - 1:
                self.obs.inc("executor.retries", len(failed))
                if self.retry_backoff:
                    time.sleep(self.retry_backoff * (2 ** attempt))
        first = pending[0]
        raise TaskError(
            "task failed after {} attempts in stage {!r} partition {}: {}".format(
                attempts, stage, first, last_errors[first]
            ),
            stage=stage,
            partition=first,
            attempts=attempts,
            cause=last_errors[first],
        )

    def close(self):
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
