"""Plan executors.

Two executors share one physical planning strategy:

* :class:`SerialExecutor` runs every task in the driver process. It is the
  reference implementation and stands in for single-machine tools.
* :class:`MultiprocessingExecutor` runs per-partition tasks on a pool of
  worker processes, standing in for the Spark cluster of the paper. Tasks
  and partitions are pickled to workers, so every function reaching the
  executor must be picklable (module-level functions or dataclasses).

Both produce identical results for identical plans; determinism is part of
the framework's contract (Sec. 1 of the paper, "Preserving determinism").
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import zlib
from dataclasses import dataclass, field

from array import array

from repro.engine import codegen
from repro.engine import plan as logical
from repro.engine.columnar import (
    BytesColumn,
    ColumnarPartition,
    as_row_partition,
    concat_partitions,
)
from repro.engine.errors import (
    ExecutionError,
    InjectedFaultError,
    PlanError,
    TaskError,
)
from repro.engine.operations import (
    BroadcastJoinTask,
    BucketAggregateTask,
    BucketJoinTask,
    CarryMapTask,
    ColumnarBroadcastJoinTask,
    ColumnarSplitRouteTask,
    _key_tuples,
    FilterStep,
    FlatMapStep,
    MapPartitionStep,
    PartitionTask,
    ProjectStep,
    SortPartitionTask,
    SplitRouteTask,
    hash_partition,
    hash_partition_columnar,
    split_columnar_evenly,
    split_evenly,
)
from repro.obs import MetricsRegistry, RuleFireCounter, stopwatch

#: Right-side row-count limit under which joins are broadcast instead of
#: shuffled. Parameter catalogs (U_rel) are tiny, so in practice the
#: interpretation join of Algorithm 1 is always a broadcast join, exactly
#: the plan Spark would choose.
BROADCAST_THRESHOLD = 20_000


#: Counter names every executor pre-creates (so run reports always show
#: them, zero-valued, even for runs that never retried or shuffled).
_EXECUTOR_COUNTERS = (
    "tasks_run",
    "shuffles",
    "broadcast_joins",
    "rows_shuffled",
    "retries",
    "faults_injected",
    "splits",
    "split_groups",
    "split_rows",
    "split_cache_hits",
    "kernels_compiled",
    "kernel_cache_hits",
    "kernel_fallbacks",
    "columnar_tasks",
    "columnar_fallbacks",
    "columnar_join_tasks",
    "columnar_shuffle_tasks",
    "columnar_exchange_bytes",
)

#: Entries kept in the per-executor split cache (materialized routings
#: of SplitByKey children). Small: each entry holds one full copy of a
#: (usually already cached) source table, grouped.
_SPLIT_CACHE_MAX = 8


class ExecutorMetrics:
    """Counters accumulated across one executor's lifetime.

    A read-only view over the executor's :class:`MetricsRegistry`
    (``executor.obs``), kept for its established attribute API
    (``metrics.retries`` etc.); new counters/gauges/histograms live on
    the registry directly and flow into run reports from there.
    """

    def __init__(self, registry=None):
        self.registry = registry if registry is not None else MetricsRegistry()
        for name in _EXECUTOR_COUNTERS:
            self.registry.counter("executor." + name)

    def _value(self, name):
        return self.registry.counter("executor." + name).value

    @property
    def tasks_run(self):
        return self._value("tasks_run")

    @property
    def shuffles(self):
        return self._value("shuffles")

    @property
    def broadcast_joins(self):
        return self._value("broadcast_joins")

    @property
    def rows_shuffled(self):
        return self._value("rows_shuffled")

    @property
    def retries(self):
        return self._value("retries")

    @property
    def faults_injected(self):
        return self._value("faults_injected")

    @property
    def splits(self):
        return self._value("splits")

    @property
    def split_groups(self):
        return self._value("split_groups")

    @property
    def split_rows(self):
        return self._value("split_rows")

    @property
    def split_cache_hits(self):
        return self._value("split_cache_hits")

    @property
    def kernels_compiled(self):
        return self._value("kernels_compiled")

    @property
    def kernel_cache_hits(self):
        return self._value("kernel_cache_hits")

    @property
    def kernel_fallbacks(self):
        return self._value("kernel_fallbacks")

    @property
    def columnar_tasks(self):
        return self._value("columnar_tasks")

    @property
    def columnar_fallbacks(self):
        return self._value("columnar_fallbacks")

    @property
    def columnar_join_tasks(self):
        return self._value("columnar_join_tasks")

    @property
    def columnar_shuffle_tasks(self):
        return self._value("columnar_shuffle_tasks")

    @property
    def columnar_exchange_bytes(self):
        return self._value("columnar_exchange_bytes")

    def reset(self):
        for name in _EXECUTOR_COUNTERS:
            self.registry.counter("executor." + name).value = 0


@dataclass(frozen=True)
class FaultPolicy:
    """Deterministic fault injection for per-partition tasks.

    A policy decides, per ``(stage, partition)`` coordinate, whether a
    task crashes (raises :class:`InjectedFaultError` on its first
    ``crashes_per_task`` attempts), is delayed, or is *poisoned* (its
    output is silently corrupted -- used by the differential harness to
    prove the oracle catches divergence; never enable in production).

    Decisions are derived from a CRC32 of the seeded coordinate string,
    not from :func:`hash`, so they are stable across worker processes
    and interpreter runs. A crashed task with ``crashes_per_task`` less
    than or equal to the executor's retry budget always succeeds on a
    later attempt, which makes fault-equivalence tests deterministic.
    """

    crash_rate: float = 0.0
    delay_rate: float = 0.0
    poison_rate: float = 0.0
    seed: int = 0
    crashes_per_task: int = 1
    delay_seconds: float = 0.001

    def __post_init__(self):
        for name in ("crash_rate", "delay_rate", "poison_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError("{} must be in [0, 1]".format(name))
        if self.crashes_per_task < 1:
            raise ValueError("crashes_per_task must be >= 1")

    def _roll(self, kind, stage, partition):
        key = "{}|{}|{}|{}".format(self.seed, kind, stage, partition)
        return (zlib.crc32(key.encode("utf-8")) % 100_000) / 100_000.0

    def crashes_for(self, stage, partition):
        """Number of leading attempts of this task that must crash."""
        if self._roll("crash", stage, partition) < self.crash_rate:
            return self.crashes_per_task
        return 0

    def should_delay(self, stage, partition):
        return self._roll("delay", stage, partition) < self.delay_rate

    def should_poison(self, stage, partition):
        return self._roll("poison", stage, partition) < self.poison_rate

    def run(self, stage, partition, attempt, task, x):
        """Run one attempt of *task* on *x* under this policy."""
        if attempt < self.crashes_for(stage, partition):
            raise InjectedFaultError(
                "injected crash in stage {!r} partition {} attempt {}".format(
                    stage, partition, attempt
                )
            )
        if self.should_delay(stage, partition):
            time.sleep(self.delay_seconds)
        out = task(x)
        if self.should_poison(stage, partition):
            # Silent row loss must corrupt either layout: list outputs
            # drop their last element, columnar outputs their last row
            # -- so the differential oracle's poison-mutant detection
            # holds on the columnar wide path too.
            if isinstance(out, list) and out:
                out = out[:-1]
            elif isinstance(out, ColumnarPartition) and len(out):
                out = out.gather(range(len(out) - 1))
        return out


@dataclass(frozen=True)
class _FaultingTask:
    """Picklable wrapper running one task attempt under a FaultPolicy."""

    task: object
    policy: FaultPolicy
    stage: str
    partition: int
    attempt: int

    def __call__(self, x):
        return self.policy.run(
            self.stage, self.partition, self.attempt, self.task, x
        )


class Executor:
    """Base executor: physical planning plus a task-running strategy.

    Parameters
    ----------
    default_parallelism:
        Partition count used for shuffles and splits.
    optimize_plans:
        When False the logical optimizer is skipped entirely; the
        differential harness uses this to compare optimized against
        unoptimized execution of the same plan.
    fault_policy:
        Optional :class:`FaultPolicy` injecting crashes/delays/poison
        into per-partition tasks.
    max_task_retries:
        How many times a failed per-partition task is retried before the
        stage fails with a structured :class:`TaskError`.
    retry_backoff:
        Base sleep (seconds) between retries; doubles per attempt.
    compile_kernels:
        When True (the default, overridable through the
        ``REPRO_KERNELS`` environment variable -- see
        :mod:`repro.engine.codegen`), fused narrow chains run as
        generated per-partition kernels; False restores the
        interpreted :class:`~repro.engine.operations.PartitionTask`
        path. None resolves from the environment.
    columnar_kernels:
        When True (the default, overridable through ``REPRO_COLUMNAR``),
        pure Filter/Project chains compile to columnar batch kernels
        that loop over column buffers; chains that do not lower fall
        back to the row path (counted as ``executor.columnar_fallbacks``).
        Requires ``compile_kernels``; None resolves from the environment.
    columnar_exchange:
        Whether partitions cross wide-stage boundaries (broadcast join,
        shuffle routing, repartition -- including the process-pool
        pickle boundary) as :class:`~repro.engine.columnar.ColumnarPartition`
        buffers instead of row lists. None resolves from
        ``REPRO_COLUMNAR_EXCHANGE``, defaulting to on exactly when both
        kernel layers are on (so interpreted/row-kernel executors keep
        a pure row exchange). Stages whose inputs are mixed-layout or
        whose key columns are not scalar-typed fall back to the row
        path per stage, counted as ``executor.columnar_fallbacks``.
    """

    def __init__(self, default_parallelism=4, optimize_plans=True,
                 fault_policy=None, max_task_retries=2, retry_backoff=0.01,
                 compile_kernels=None, columnar_kernels=None,
                 columnar_exchange=None):
        if default_parallelism < 1:
            raise ValueError("default_parallelism must be >= 1")
        if max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")
        self.default_parallelism = default_parallelism
        self.optimize_plans = optimize_plans
        self.fault_policy = fault_policy
        self.max_task_retries = max_task_retries
        self.retry_backoff = retry_backoff
        self.compile_kernels = codegen.kernels_enabled(compile_kernels)
        self.columnar_kernels = codegen.columnar_enabled(columnar_kernels)
        self.columnar_exchange = codegen.exchange_enabled(
            columnar_exchange,
            default=self.compile_kernels and self.columnar_kernels,
        )
        self.obs = MetricsRegistry()
        self.metrics = ExecutorMetrics(self.obs)
        self._stage_seq = 0
        self._split_cache = {}

    # -- task running (strategy implemented by subclasses) ---------------
    def run_tasks(self, task, inputs, stage="task"):
        raise NotImplementedError

    def _attempt_task(self, task, x, stage, index, attempt):
        """One attempt of *task* on partition *index*, fault-injected."""
        if self.fault_policy is None:
            return task(x)
        return _FaultingTask(task, self.fault_policy, stage, index, attempt)(x)

    def _run_partition_with_retries(self, task, x, stage, index):
        """Run one partition task, retrying injected faults with backoff.

        Genuine task exceptions propagate immediately (a deterministic
        bug does not become less buggy by retrying in-process); injected
        faults model transient worker loss and are retried up to
        ``max_task_retries`` times.
        """
        attempts = self.max_task_retries + 1
        last_exc = None
        for attempt in range(attempts):
            try:
                return self._attempt_task(task, x, stage, index, attempt)
            except InjectedFaultError as exc:
                last_exc = exc
                self.obs.inc("executor.faults_injected")
                if attempt < attempts - 1:
                    self.obs.inc("executor.retries")
                    if self.retry_backoff:
                        time.sleep(self.retry_backoff * (2 ** attempt))
        raise TaskError(
            "task failed after {} attempts in stage {!r} partition {}: {}".format(
                attempts, stage, index, last_exc
            ),
            stage=stage,
            partition=index,
            attempts=attempts,
            cause=last_exc,
        )

    def _timed_partition(self, task, x, stage, index):
        """Run one partition (with retries), observing its duration.

        Returns ``(result, seconds)``; the duration lands in the
        ``executor.task_seconds`` histograms (global and per stage
        kind), which is where run reports read per-partition task
        timings from.
        """
        with stopwatch() as watch:
            result = self._run_partition_with_retries(task, x, stage, index)
        self._observe_task(stage, watch.seconds, task=task)
        return result, watch.seconds

    def _observe_task(self, stage, seconds, task=None):
        kind = stage.split("[", 1)[0]
        self.obs.observe("executor.task_seconds", seconds)
        self.obs.observe("executor.task_seconds.{}".format(kind), seconds)
        kernel_id = getattr(task, "kernel_id", "")
        if kernel_id:
            self.obs.observe("executor.kernel_run_seconds", seconds)
            self.obs.observe(
                "executor.kernel_run_seconds.{}".format(kernel_id), seconds
            )

    def reset_stage_clock(self):
        """Restart stage numbering at zero.

        Stage labels embed a monotonic sequence number, and
        :class:`FaultPolicy` decisions key on the full label -- so on a
        long-lived executor the fault pattern of a plan depends on how
        many stages ran before it. Harnesses that replay cases on cached
        executors (the differential oracle, the shrinker) reset the
        clock per case to make fault injection a pure function of the
        case.
        """
        self._stage_seq = 0

    def close(self):
        """Release worker resources (no-op for serial execution)."""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # -- physical planning -----------------------------------------------
    def execute(self, node):
        """Materialize a plan node into a list of row-tuple partitions.

        This is the collect/storage edge: whatever layout the stages
        used internally, callers receive row lists. Wide stages recurse
        through :meth:`_execute_partitions` instead, which preserves
        the columnar layout across stage boundaries.
        """
        partitions = self._execute_partitions(node, to_rows=True)
        return [as_row_partition(p) for p in partitions]

    def _execute_partitions(self, node, to_rows=False):
        """Execute *node*, preserving partition layout.

        Returns a list of partitions that may mix row lists and
        :class:`~repro.engine.columnar.ColumnarPartition` buffers --
        whichever layout each stage produced. With ``to_rows`` the
        trailing narrow chain emits row lists directly (saving the
        final transpose for the caller-facing :meth:`execute` edge);
        without it, columnar-lowered chains emit columnar partitions so
        downstream wide stages consume buffers.
        """
        from repro.engine.optimizer import optimize

        if self.optimize_plans:
            node = optimize(node, trace=RuleFireCounter(self.obs))
        base, steps = self._linearize(node)
        partitions = self._execute_wide(base)
        columnar_bytes = sum(
            p.nbytes() for p in partitions
            if isinstance(p, ColumnarPartition)
        )
        if columnar_bytes:
            self.obs.set_gauge("executor.partition_bytes", columnar_bytes)
        if steps:
            emit = "rows" if to_rows or not self.columnar_exchange \
                else "partition"
            task = self._narrow_task(
                steps, input_width=len(base.schema), emit=emit
            )
            partitions = self._run(task, partitions, "narrow")
        return partitions

    def _narrow_task(self, steps, input_width=None, emit="rows"):
        """Build the fused per-partition task for a narrow chain.

        Columnar batch kernels are tried first (pure Filter/Project
        chains; ``columnar_kernels``), then row kernels; the interpreted
        :class:`PartitionTask` serves as the explicit fallback
        (``compile_kernels=False`` / ``REPRO_KERNELS=interpret``), for
        chains with nothing to compile, and -- counted as
        ``executor.kernel_fallbacks`` -- when lowering fails. *emit*
        selects the columnar task's output boundary (row lists or a
        columnar partition for a downstream wide stage); the row paths
        always emit rows.
        """
        steps = tuple(steps)
        if (
            self.compile_kernels
            and self.columnar_kernels
            and input_width is not None
        ):
            try:
                task = codegen.compile_columnar_task(
                    steps, input_width, registry=self.obs, emit=emit
                )
            except codegen.CodegenError:
                self.obs.inc("executor.columnar_fallbacks")
                task = None
            if task is not None:
                self.obs.inc("executor.columnar_tasks")
                return task
        if self.compile_kernels:
            try:
                task = codegen.compile_partition_task(
                    steps, registry=self.obs
                )
            except codegen.CodegenError:
                self.obs.inc("executor.kernel_fallbacks")
                task = None
            if task is not None:
                return task
        return PartitionTask(steps)

    def _run(self, task, inputs, stage="stage"):
        label = "{}[{}]".format(stage, self._stage_seq)
        self._stage_seq += 1
        self.obs.inc("executor.tasks_run", len(inputs))
        try:
            with stopwatch() as watch:
                outputs = self.run_tasks(task, inputs, stage=label)
        except ExecutionError:
            raise
        except Exception as exc:
            raise ExecutionError("task execution failed: {}".format(exc), exc)
        self.obs.observe("executor.stage_seconds.{}".format(stage),
                         watch.seconds)
        return outputs

    @staticmethod
    def _linearize(node):
        """Peel the chain of narrow ops above the first wide node."""
        steps = []
        while node.narrow:
            steps.append(_narrow_step(node))
            node = node.child
        steps.reverse()
        return node, steps

    def _execute_wide(self, node):
        if isinstance(node, logical.Source):
            # Columnar source partitions pass through untouched (they
            # are read-only by contract); row partitions are copied so
            # tasks can never alias a caller's list.
            return [
                p if isinstance(p, ColumnarPartition) else list(p)
                for p in node.partitions
            ]
        if isinstance(node, logical.Join):
            return self._execute_join(node)
        if isinstance(node, logical.Union):
            # Layout-preserving: each side keeps whatever layout its
            # stages produced; consumers handle mixed partition lists.
            return (
                self._execute_partitions(node.left)
                + self._execute_partitions(node.right)
            )
        if isinstance(node, logical.GroupBy):
            return self._execute_group_by(node)
        if isinstance(node, logical.Sort):
            return self._execute_sort(node)
        if isinstance(node, logical.Repartition):
            return self._execute_repartition(node)
        if isinstance(node, logical.SortedMapPartitions):
            return self._execute_sorted_map(node)
        if isinstance(node, logical.Limit):
            return self._execute_limit(node)
        if isinstance(node, logical.SplitByKey):
            groups, num_partitions = self._split_groups(node.child, node.key)
            parts = groups.get(node.group)
            if parts is None:
                return [[] for _unused in range(num_partitions)]
            # Columnar group partitions are read-only by contract and
            # safe to share with the split cache; row lists are copied
            # so tasks can never alias cached state.
            return [
                p if isinstance(p, ColumnarPartition) else list(p)
                for p in parts
            ]
        raise PlanError("unknown plan node {!r}".format(type(node).__name__))

    # -- columnar wide-stage gating --------------------------------------
    def _columnar_stage_ok(self, parts, key_indices, reject_nan=False):
        """True when a wide stage can run columnar over *parts*.

        Requires the columnar exchange to be on, every input partition
        columnar (mixed-layout stages fall back whole) and every key
        column scalar-typed, so key tuples built from buffers hash and
        compare exactly like the row path's. ``reject_nan``
        additionally routes float key columns containing NaN to the row
        path: dict-based join matching on NaN keys is object-identity
        dependent, and gathering a buffer materializes fresh float
        objects.
        """
        if not self.columnar_exchange or not parts:
            return False
        if not all(isinstance(p, ColumnarPartition) for p in parts):
            return False
        for part in parts:
            for i in key_indices:
                column = part.column(i)
                if not _scalar_key_column(column):
                    return False
                if reject_nan and _column_has_nan(column):
                    return False
        return True

    def _note_columnar_fallback(self, parts):
        """Count a wide stage that had columnar inputs but ran rows."""
        if self.columnar_exchange and any(
            isinstance(p, ColumnarPartition) for p in parts
        ):
            self.obs.inc("executor.columnar_fallbacks")

    def _count_columnar_exchange(self, parts, counter, tasks):
        """Account a columnar wide stage: task count plus buffer bytes.

        ``executor.columnar_exchange_bytes`` accumulates the
        :meth:`~repro.engine.columnar.ColumnarPartition.nbytes` of
        every partition entering a wide stage in columnar form -- the
        bytes that crossed a stage boundary (and, under the
        multiprocessing executor, the process-pool pickle boundary)
        without a row detour.
        """
        self.obs.inc("executor." + counter, tasks)
        nbytes = sum(
            p.nbytes() for p in parts if isinstance(p, ColumnarPartition)
        )
        if nbytes:
            self.obs.inc("executor.columnar_exchange_bytes", nbytes)

    def _execute_join(self, node):
        left_parts = self._execute_partitions(node.left)
        right_parts = self._execute_partitions(node.right)
        left_schema = node.left.schema
        right_schema = node.right.schema
        left_keys = tuple(left_schema.index_of(k) for k in node.left_keys)
        right_keys = tuple(right_schema.index_of(k) for k in node.right_keys)
        right_width = len(right_schema) - len(right_keys)
        right_count = sum(len(p) for p in right_parts)
        if right_count <= BROADCAST_THRESHOLD:
            self.obs.inc("executor.broadcast_joins")
            index = _broadcast_index(right_parts, right_keys)
            if self._columnar_stage_ok(left_parts, left_keys,
                                       reject_nan=True):
                self._count_columnar_exchange(
                    left_parts, "columnar_join_tasks", len(left_parts)
                )
                task = ColumnarBroadcastJoinTask(
                    left_keys, index, node.how, right_width
                )
                return self._run(task, left_parts, "broadcast-join")
            self._note_columnar_fallback(left_parts)
            left_parts = [as_row_partition(p) for p in left_parts]
            task = BroadcastJoinTask(left_keys, index, node.how, right_width)
            return self._run(task, left_parts, "broadcast-join")
        # Large right side: hash-shuffle both sides into aligned buckets
        # (row path: bucket pairs interleave both sides' rows, which has
        # no columnar layout to preserve).
        self.obs.inc("executor.shuffles")
        self._note_columnar_fallback(left_parts + right_parts)
        buckets = max(self.default_parallelism, 1)
        left_rows = [r for p in left_parts for r in as_row_partition(p)]
        right_rows = [r for p in right_parts for r in as_row_partition(p)]
        self.obs.inc("executor.rows_shuffled", len(left_rows) + len(right_rows))
        left_buckets = hash_partition(left_rows, left_keys, buckets)
        right_buckets = hash_partition(right_rows, right_keys, buckets)
        task = BucketJoinTask(
            left_keys, right_keys, right_keys, node.how, right_width
        )
        return self._run(
            task, list(zip(left_buckets, right_buckets)), "bucket-join"
        )

    def _execute_group_by(self, node):
        child_parts = self.execute(node.child)
        schema = node.child.schema
        key_indices = tuple(schema.index_of(k) for k in node.keys)
        bound_aggs = tuple(
            (agg, schema.index_of(column) if column is not None else None)
            for _name, agg, column in node.aggregates
        )
        rows = [r for p in child_parts for r in p]
        if not key_indices:
            # Global aggregation: one group, one output row.
            task = BucketAggregateTask((), bound_aggs)
            return [task(rows)]
        self.obs.inc("executor.shuffles")
        self.obs.inc("executor.rows_shuffled", len(rows))
        buckets = hash_partition(
            rows, key_indices, max(self.default_parallelism, 1)
        )
        task = BucketAggregateTask(key_indices, bound_aggs)
        return self._run(task, buckets, "group-by")

    def _execute_sort(self, node):
        child_parts = self.execute(node.child)
        schema = node.child.schema
        key_indices = tuple(schema.index_of(k) for k in node.keys)
        rows = [r for p in child_parts for r in p]
        self.obs.inc("executor.shuffles")
        self.obs.inc("executor.rows_shuffled", len(rows))
        task = SortPartitionTask(key_indices, node.ascending)
        # Routed through the task runner so cost models charge the sort
        # as one (serial) task; executors with a single input run it in
        # the driver anyway.
        [ordered] = self._run(task, [rows], "sort")
        return split_evenly(ordered, self.default_parallelism)

    def _execute_repartition(self, node):
        child_parts = self._execute_partitions(node.child)
        key_indices = ()
        if node.keys:
            schema = node.child.schema
            key_indices = tuple(schema.index_of(k) for k in node.keys)
        self.obs.inc("executor.shuffles")
        total = sum(len(p) for p in child_parts)
        self.obs.inc("executor.rows_shuffled", total)
        if self._columnar_stage_ok(child_parts, key_indices):
            width = len(node.child.schema)
            self._count_columnar_exchange(
                child_parts, "columnar_shuffle_tasks", len(child_parts)
            )
            if node.keys:
                # Per-partition bucketing then per-bucket concatenation
                # in partition order reproduces the row path's
                # flatten-then-bucket order exactly.
                routed = [
                    hash_partition_columnar(p, key_indices,
                                            node.num_partitions)
                    for p in child_parts
                ]
                return [
                    concat_partitions(
                        [buckets[i] for buckets in routed], width
                    )
                    for i in range(node.num_partitions)
                ]
            return split_columnar_evenly(
                concat_partitions(child_parts, width), node.num_partitions
            )
        self._note_columnar_fallback(child_parts)
        rows = [r for p in child_parts for r in as_row_partition(p)]
        if node.keys:
            return hash_partition(rows, key_indices, node.num_partitions)
        return split_evenly(rows, node.num_partitions)

    def _execute_limit(self, node):
        child_parts = self._execute_partitions(node.child)
        remaining = node.n
        out = []
        for part in child_parts:
            if remaining <= 0:
                out.append([])
            elif len(part) <= remaining:
                out.append(
                    part if isinstance(part, ColumnarPartition)
                    else list(part)
                )
                remaining -= len(part)
            elif isinstance(part, ColumnarPartition):
                out.append(part.gather(range(remaining)))
                remaining = 0
            else:
                out.append(list(part[:remaining]))
                remaining = 0
        return out

    # -- single-pass split (SplitByKey) ----------------------------------
    def execute_split(self, node, key, keys=None):
        """Split *node*'s rows by the *key* column in one routed pass.

        Returns ``(groups, num_partitions)`` where *groups* maps each
        key value to its list of partitions, co-partitioned with the
        input (group partition ``i`` holds the rows of input partition
        ``i`` with that key value, in order). When *keys* is given the
        result holds exactly those keys in that order, with absent keys
        mapped to empty partition lists; otherwise keys are discovered
        from the data. Partition lists may be shared with the split
        cache -- treat them as read-only.
        """
        groups, num_partitions = self._split_groups(node, key)
        if keys is None:
            return dict(groups), num_partitions
        out = {}
        for value in keys:
            parts = groups.get(value)
            if parts is None:
                parts = [[] for _unused in range(num_partitions)]
            out[value] = parts
        return out, num_partitions

    def _split_groups(self, child, key):
        """Route *child*'s rows by *key* into per-value groups, cached.

        The routing is one task per child partition (stage kind
        ``split``, subject to fault injection and the normal retry
        budget) followed by a driver-side regroup. Results are cached
        per ``(child plan, key)`` so sibling ``SplitByKey`` nodes -- and
        repeated filter fan-outs rewritten by the optimizer -- reuse one
        shuffle stage instead of rescanning the child per group.
        """
        cache_key = self._split_cache_key(child, key)
        if cache_key is not None:
            cached = self._split_cache.get(cache_key)
            if cached is not None:
                self.obs.inc("executor.split_cache_hits")
                return cached
        child_parts = self._execute_partitions(child)
        key_index = child.schema.index_of(key)
        num_partitions = len(child_parts)
        groups = {}
        total_rows = 0
        if self._columnar_stage_ok(child_parts, (key_index,)):
            self._count_columnar_exchange(
                child_parts, "columnar_shuffle_tasks", len(child_parts)
            )
            routed = self._run(
                ColumnarSplitRouteTask(key_index), child_parts, "split"
            )
            # Group partitions stay columnar; slots for partitions that
            # hold no rows of a group share one empty partition (all
            # read-only by contract).
            empty = ColumnarPartition(
                [[] for _unused in range(len(child.schema))], 0
            )
            for part_index, pairs in enumerate(routed):
                for group, sub in pairs:
                    total_rows += len(sub)
                    parts = groups.get(group)
                    if parts is None:
                        parts = groups[group] = [
                            empty for _unused in range(num_partitions)
                        ]
                    parts[part_index] = sub
        else:
            self._note_columnar_fallback(child_parts)
            child_parts = [as_row_partition(p) for p in child_parts]
            routed = self._run(
                SplitRouteTask(key_index), child_parts, "split"
            )
            for part_index, pairs in enumerate(routed):
                total_rows += len(pairs)
                for group, row in pairs:
                    parts = groups.get(group)
                    if parts is None:
                        parts = groups[group] = [
                            [] for _unused in range(num_partitions)
                        ]
                    parts[part_index].append(row)
        self.obs.inc("executor.shuffles")
        self.obs.inc("executor.rows_shuffled", total_rows)
        self.obs.inc("executor.splits")
        self.obs.inc("executor.split_groups", len(groups))
        self.obs.inc("executor.split_rows", total_rows)
        result = (groups, num_partitions)
        if cache_key is not None:
            if len(self._split_cache) >= _SPLIT_CACHE_MAX:
                self._split_cache.pop(next(iter(self._split_cache)))
            self._split_cache[cache_key] = result
        return result

    @staticmethod
    def _split_cache_key(child, key):
        """Cache key for a split routing, or None when uncacheable.

        Plan nodes are frozen dataclasses over immutable data, so
        structural equality identifies reusable routings; a child
        holding an unhashable payload simply bypasses the cache.
        """
        try:
            hash(child)
        except TypeError:
            return None
        return (child, key)

    def _execute_sorted_map(self, node):
        child_parts = self.execute(node.child)
        tail = max(node.carry_rows, 0)
        carries = []
        previous = []
        for part in child_parts:
            carries.append(previous)
            if tail:
                # Keep the global tail so short or empty partitions still
                # pass the right carry rows downstream.
                previous = (previous + list(part))[-tail:]
        task = CarryMapTask(node.func)
        return self._run(task, list(zip(child_parts, carries)), "sorted-map")


#: Cell types a key column may hold for the columnar key-tuple build to
#: hash and compare exactly like the row path (hashable scalars only).
_SCALAR_CELL_TYPES = frozenset(
    (int, float, bool, str, bytes, type(None))
)


def _scalar_key_column(column):
    """True when every cell of a key column is a hashable scalar.

    Typed buffers (``array``, ``memoryview``, ``BytesColumn``)
    guarantee it by construction; object columns get one C-speed type
    scan. Object-typed keys -- tuples, dicts, lazily decoded structures
    -- fail the scan and route their stage down the row path, where the
    row task's semantics are the single source of truth.
    """
    if isinstance(column, (array, memoryview, BytesColumn)):
        return True
    return set(map(type, column)) <= _SCALAR_CELL_TYPES


def _column_has_nan(column):
    """True when a key column holds a NaN cell (floats only)."""
    if isinstance(column, BytesColumn):
        return False
    if isinstance(column, array) and column.typecode not in ("f", "d"):
        return False
    if isinstance(column, memoryview) and column.format not in ("f", "d"):
        return False
    return any(v != v for v in column)


def _broadcast_index(right_parts, right_keys):
    """Build the broadcast hash map: key tuple -> right row remainders.

    Columnar right partitions are consumed straight from their key and
    remainder columns (no row materialization); row partitions use the
    classic per-row build. Cell values, and therefore dict hashing and
    equality, are identical either way.
    """
    index = {}
    drop = set(right_keys)
    for part in right_parts:
        if isinstance(part, ColumnarPartition):
            keep = [i for i in range(part.width) if i not in drop]
            if keep:
                rems = zip(*(part.column(i) for i in keep))
            else:
                rems = iter([()] * len(part))
            for key, rem in zip(_key_tuples(part, right_keys), rems):
                index.setdefault(key, []).append(rem)
            continue
        for row in part:
            key = tuple(row[i] for i in right_keys)
            rem = tuple(v for i, v in enumerate(row) if i not in drop)
            index.setdefault(key, []).append(rem)
    return index


def _narrow_step(node):
    if isinstance(node, logical.Filter):
        return FilterStep(node.predicate)
    if isinstance(node, logical.Project):
        return ProjectStep(node.exprs)
    if isinstance(node, logical.FlatMap):
        return FlatMapStep(node.func)
    if isinstance(node, logical.MapPartitions):
        return MapPartitionStep(node.func)
    raise PlanError(
        "node {!r} is marked narrow but has no physical step".format(
            type(node).__name__
        )
    )


class SerialExecutor(Executor):
    """Run every task in the driver process, one partition at a time."""

    def run_tasks(self, task, inputs, stage="task"):
        return [
            self._timed_partition(task, x, stage, i)[0]
            for i, x in enumerate(inputs)
        ]


class SimulatedClusterExecutor(SerialExecutor):
    """Serial execution with a measured cluster-makespan cost model.

    The reproduction's stand-in for the paper's 70-node Spark cluster on
    hosts without real parallelism: every per-partition task runs
    serially (results are bit-identical to :class:`SerialExecutor`), but
    each task's wall time is measured and the executor accumulates the
    *makespan* that ``num_workers`` parallel workers would need --
    longest-processing-time-first assignment of the measured task
    durations, plus a fixed per-stage coordination latency.

    ``simulated_seconds`` is therefore an evidence-based estimate of the
    distributed wall time, derived from real single-core execution. The
    benchmarks report it alongside the raw wall time.
    """

    def __init__(self, num_workers=10, stage_latency=0.001,
                 default_parallelism=None, **kwargs):
        if default_parallelism is None:
            default_parallelism = num_workers
        super().__init__(default_parallelism=default_parallelism, **kwargs)
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.stage_latency = stage_latency
        self.simulated_seconds = 0.0
        #: Sum of raw task durations (no makespan division); wall time
        #: minus this is driver-side work not covered by the model.
        self.serial_task_seconds = 0.0

    def reset_clock(self):
        self.simulated_seconds = 0.0
        self.serial_task_seconds = 0.0

    def run_tasks(self, task, inputs, stage="task"):
        if not inputs:
            # A zero-partition stage schedules no tasks; charging the
            # per-stage coordination latency for it would make empty
            # stages cost a full stage_latency each.
            return []
        outputs = []
        durations = []
        for i, x in enumerate(inputs):
            output, seconds = self._timed_partition(task, x, stage, i)
            outputs.append(output)
            durations.append(seconds)
        self.simulated_seconds += self._makespan(durations) + self.stage_latency
        self.serial_task_seconds += sum(durations)
        return outputs

    def _makespan(self, durations):
        """LPT greedy assignment of task durations to workers."""
        loads = [0.0] * self.num_workers
        for duration in sorted(durations, reverse=True):
            index = loads.index(min(loads))
            loads[index] += duration
        return max(loads) if loads else 0.0


class MultiprocessingExecutor(Executor):
    """Run per-partition tasks on a pool of forked worker processes.

    This is the stand-in for the paper's Spark cluster: partitions are the
    unit of parallelism and tasks are shipped (pickled) to workers. The
    pool is created lazily on first use and should be released with
    :meth:`close` (or by using the executor as a context manager).
    """

    def __init__(self, num_workers=None, default_parallelism=None, **kwargs):
        if num_workers is None:
            num_workers = max(2, (os.cpu_count() or 2) - 1)
        if default_parallelism is None:
            default_parallelism = num_workers
        super().__init__(default_parallelism=default_parallelism, **kwargs)
        self.num_workers = num_workers
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            ctx = multiprocessing.get_context("fork")
            self._pool = ctx.Pool(processes=self.num_workers)
        return self._pool

    def run_tasks(self, task, inputs, stage="task"):
        if len(inputs) <= 1:
            # Not worth a round-trip through the pool.
            return [
                self._timed_partition(task, x, stage, i)[0]
                for i, x in enumerate(inputs)
            ]
        pool = self._ensure_pool()
        # Fail fast (and without burning retries) on unpicklable tasks:
        # nested functions raise AttributeError and exotic objects
        # TypeError from pickle, which are indistinguishable from
        # genuine worker exceptions once they come back from the pool.
        try:
            blob = pickle.dumps(task)
        except Exception as exc:
            raise ExecutionError(
                "task for stage {!r} is not picklable: {} "
                "(use module-level functions or dataclasses, "
                "not lambdas or closures)".format(stage, exc),
                exc,
            )
        self.obs.set_gauge("executor.pickle_task_bytes", len(blob))
        self.obs.gauge("executor.pickle_task_bytes_max").set_max(len(blob))
        self.obs.observe("executor.pickle_task_bytes_hist", len(blob))
        results = [None] * len(inputs)
        pending = list(range(len(inputs)))
        attempts = self.max_task_retries + 1
        last_errors = {}
        for attempt in range(attempts):
            handles = []
            for i in pending:
                call = task
                if self.fault_policy is not None:
                    call = _FaultingTask(
                        task, self.fault_policy, stage, i, attempt
                    )
                handles.append((i, pool.apply_async(call, (inputs[i],))))
            failed = []
            for i, handle in handles:
                try:
                    results[i] = handle.get()
                except pickle.PicklingError as exc:
                    raise ExecutionError(
                        "task for stage {!r} is not picklable: {} "
                        "(use module-level functions or dataclasses, "
                        "not lambdas or closures)".format(stage, exc),
                        exc,
                    )
                except Exception as exc:
                    # Worker loss is transient by assumption; genuine
                    # task bugs fail identically on every attempt and
                    # exhaust the (bounded) retry budget quickly.
                    failed.append(i)
                    last_errors[i] = exc
                    if isinstance(exc, InjectedFaultError):
                        self.obs.inc("executor.faults_injected")
            if not failed:
                return results
            pending = failed
            if attempt < attempts - 1:
                self.obs.inc("executor.retries", len(failed))
                if self.retry_backoff:
                    time.sleep(self.retry_backoff * (2 ** attempt))
        first = pending[0]
        raise TaskError(
            "task failed after {} attempts in stage {!r} partition {}: {}".format(
                attempts, stage, first, last_errors[first]
            ),
            stage=stage,
            partition=first,
            attempts=attempts,
            cause=last_errors[first],
        )

    def close(self):
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
