"""Exception hierarchy for the dataflow engine.

The engine mirrors the error categories a user of a distributed tabular
framework (such as Apache Spark, which the paper uses) would encounter:
schema problems, analysis-time plan problems and execution-time failures.
"""


class EngineError(Exception):
    """Base class for all engine errors."""


class SchemaError(EngineError):
    """A column reference or column definition is invalid."""


class PlanError(EngineError):
    """The logical plan is malformed (e.g. joining incompatible tables)."""


class ExecutionError(EngineError):
    """A task failed while executing a physical plan."""

    def __init__(self, message, cause=None):
        super().__init__(message)
        self.cause = cause


class TaskError(ExecutionError):
    """A per-partition task failed permanently (retries exhausted).

    Carries the structured coordinates of the failure so callers -- and
    the differential fuzz harness -- can name the exact stage and
    partition instead of parsing a message string.
    """

    def __init__(self, message, stage=None, partition=None, attempts=None,
                 cause=None):
        super().__init__(message, cause)
        self.stage = stage
        self.partition = partition
        self.attempts = attempts


class InjectedFaultError(EngineError):
    """A failure deliberately injected by a :class:`FaultPolicy`.

    Raised inside worker tasks to simulate a worker dying mid-stage.
    Kept deliberately simple (single message argument) so it pickles
    cleanly across the process boundary of the multiprocessing executor.
    """
