"""Exception hierarchy for the dataflow engine.

The engine mirrors the error categories a user of a distributed tabular
framework (such as Apache Spark, which the paper uses) would encounter:
schema problems, analysis-time plan problems and execution-time failures.
"""


class EngineError(Exception):
    """Base class for all engine errors."""


class SchemaError(EngineError):
    """A column reference or column definition is invalid."""


class PlanError(EngineError):
    """The logical plan is malformed (e.g. joining incompatible tables)."""


class ExecutionError(EngineError):
    """A task failed while executing a physical plan."""

    def __init__(self, message, cause=None):
        super().__init__(message)
        self.cause = cause
