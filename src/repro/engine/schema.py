"""Table schemas.

A :class:`Schema` is an ordered mapping of column names to (optional)
logical types. Rows are stored as plain tuples; the schema provides the
name-to-index mapping every operator uses to bind column references.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.errors import SchemaError

#: Logical column types. These are advisory -- the engine is dynamically
#: typed like Spark's Python rows -- but datasets and protocol decoders use
#: them to document what a column carries.
FLOAT = "float"
INT = "int"
STRING = "string"
BYTES = "bytes"
BOOL = "bool"
ANY = "any"

_VALID_TYPES = frozenset({FLOAT, INT, STRING, BYTES, BOOL, ANY})


@dataclass(frozen=True)
class Field:
    """A named, typed column of a table."""

    name: str
    dtype: str = ANY

    def __post_init__(self):
        if not self.name:
            raise SchemaError("field name must be non-empty")
        if self.dtype not in _VALID_TYPES:
            raise SchemaError(
                "unknown dtype {!r} for field {!r}; expected one of {}".format(
                    self.dtype, self.name, sorted(_VALID_TYPES)
                )
            )


@dataclass(frozen=True)
class Schema:
    """An ordered collection of :class:`Field` objects.

    Examples
    --------
    >>> schema = Schema.of("t", "payload", "bus_id")
    >>> schema.index_of("payload")
    1
    >>> schema.names
    ('t', 'payload', 'bus_id')
    """

    fields: tuple = field(default_factory=tuple)

    def __post_init__(self):
        names = [f.name for f in self.fields]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaError(
                "duplicate column names: {}".format(sorted(duplicates))
            )

    @classmethod
    def of(cls, *names, dtypes=None):
        """Build a schema from column names, optionally with dtypes.

        Parameters
        ----------
        names:
            Column names in order.
        dtypes:
            Optional sequence of dtype strings, parallel to *names*.
        """
        if dtypes is None:
            dtypes = [ANY] * len(names)
        if len(dtypes) != len(names):
            raise SchemaError("dtypes must be parallel to names")
        return cls(tuple(Field(n, d) for n, d in zip(names, dtypes)))

    @property
    def names(self):
        return tuple(f.name for f in self.fields)

    def __len__(self):
        return len(self.fields)

    def __contains__(self, name):
        return any(f.name == name for f in self.fields)

    def __iter__(self):
        return iter(self.fields)

    def index_of(self, name):
        """Return the tuple index of column *name*.

        Raises
        ------
        SchemaError
            If the column does not exist.
        """
        for i, f in enumerate(self.fields):
            if f.name == name:
                return i
        raise SchemaError(
            "no column {!r} in schema {}".format(name, list(self.names))
        )

    def field_for(self, name):
        return self.fields[self.index_of(name)]

    def select(self, names):
        """Return a new schema containing only *names*, in that order."""
        return Schema(tuple(self.field_for(n) for n in names))

    def drop(self, names):
        """Return a new schema without the columns in *names*."""
        dropped = set(names)
        missing = dropped - set(self.names)
        if missing:
            raise SchemaError(
                "cannot drop unknown columns: {}".format(sorted(missing))
            )
        return Schema(tuple(f for f in self.fields if f.name not in dropped))

    def append(self, name, dtype=ANY):
        """Return a new schema with an extra column appended."""
        if name in self:
            raise SchemaError("column {!r} already exists".format(name))
        return Schema(self.fields + (Field(name, dtype),))

    def rename(self, mapping):
        """Return a new schema with columns renamed per *mapping*."""
        unknown = set(mapping) - set(self.names)
        if unknown:
            raise SchemaError(
                "cannot rename unknown columns: {}".format(sorted(unknown))
            )
        return Schema(
            tuple(Field(mapping.get(f.name, f.name), f.dtype) for f in self.fields)
        )

    def concat(self, other):
        """Return the concatenation of two schemas (used by joins)."""
        return Schema(self.fields + other.fields)

    def row_as_dict(self, row):
        """Convert a row tuple into a name -> value dict."""
        return dict(zip(self.names, row))
