"""Physical per-partition operations.

Executors fuse chains of narrow plan nodes into a single
:class:`PartitionTask` per input partition; the task is a picklable object
so the multiprocessing executor can ship it to a worker process. Wide
operations (joins, group-bys, sorts) are decomposed into hash/range
shuffles on the driver plus per-bucket tasks defined here.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from operator import itemgetter

from repro.engine.columnar import (
    ColumnarPartition,
    as_row_partition,
    gather_column,
)


@dataclass(frozen=True)
class FilterStep:
    predicate: object

    def run(self, rows):
        pred = self.predicate
        return [r for r in rows if pred(r)]


@dataclass(frozen=True)
class ProjectStep:
    exprs: tuple

    def run(self, rows):
        exprs = self.exprs
        return [tuple(e(r) for e in exprs) for r in rows]


@dataclass(frozen=True)
class FlatMapStep:
    func: object

    def run(self, rows):
        func = self.func
        out = []
        for r in rows:
            out.extend(func(r))
        return out


@dataclass(frozen=True)
class MapPartitionStep:
    func: object

    def run(self, rows):
        return self.func(rows)


@dataclass(frozen=True)
class PartitionTask:
    """A fused chain of narrow steps applied to one partition.

    Accepts row lists or columnar partitions (normalized to rows on
    entry), so the interpreted path runs unchanged over columnar
    sources.
    """

    steps: tuple

    def __call__(self, rows):
        rows = as_row_partition(rows)
        for step in self.steps:
            rows = step.run(rows)
        return rows


@dataclass(frozen=True)
class BroadcastJoinTask:
    """Join one left partition against a broadcast hash map of right rows.

    ``right_index`` maps join key -> list of right row remainders (right
    rows with the key columns removed). ``left_key_indices`` locate the
    key inside each left row.
    """

    left_key_indices: tuple
    right_index: dict
    how: str
    right_width: int

    def __call__(self, rows):
        out = []
        idx = self.right_index
        keys = self.left_key_indices
        empty = (None,) * self.right_width
        left_outer = self.how == "left"
        for row in rows:
            key = tuple(row[i] for i in keys)
            matches = idx.get(key)
            if matches:
                for rem in matches:
                    out.append(row + rem)
            elif left_outer:
                out.append(row + empty)
        return out


def _key_tuples(partition, key_indices):
    """Iterate the key tuple of every row of a columnar partition.

    Matches ``tuple(row[i] for i in key_indices)`` on :meth:`to_rows`
    output cell for cell, without building the rows.
    """
    if not key_indices:
        n = len(partition)
        return iter([()] * n)
    return zip(*(partition.column(i) for i in key_indices))


@dataclass(frozen=True)
class ColumnarBroadcastJoinTask:
    """Broadcast join over a columnar left partition, column-wise.

    Same ``right_index`` (key -> right row remainders) as
    :class:`BroadcastJoinTask`, but the left partition is consumed as
    column buffers: one pass over the key columns computes, per output
    row, the left row index to gather and the right remainder to
    append. Left output columns are then built by
    :func:`~repro.engine.columnar.gather_column` and right output
    columns by transposing the matched remainders -- no intermediate
    row tuples. Output rows are ``left row + remainder`` in left scan
    order, identical row for row to the row task.

    Emits a :class:`~repro.engine.columnar.ColumnarPartition`; row
    inputs (mixed-layout stages, re-routed fallbacks) delegate to the
    row task unchanged.
    """

    left_key_indices: tuple
    right_index: dict
    how: str
    right_width: int

    def __call__(self, partition):
        if not isinstance(partition, ColumnarPartition):
            return BroadcastJoinTask(
                self.left_key_indices, self.right_index, self.how,
                self.right_width,
            )(partition)
        idx = self.right_index
        empty = (None,) * self.right_width
        left_outer = self.how == "left"
        gather_indices = []
        append_index = gather_indices.append
        remainders = []
        append_rem = remainders.append
        for i, key in enumerate(
            _key_tuples(partition, self.left_key_indices)
        ):
            matches = idx.get(key)
            if matches:
                for rem in matches:
                    append_index(i)
                    append_rem(rem)
            elif left_outer:
                append_index(i)
                append_rem(empty)
        columns = [
            gather_column(c, gather_indices) for c in partition.columns
        ]
        if remainders:
            columns.extend(list(c) for c in zip(*remainders))
        else:
            columns.extend([] for _unused in range(self.right_width))
        return ColumnarPartition(columns, len(gather_indices))


@dataclass(frozen=True)
class BucketJoinTask:
    """Join one hash bucket of left rows against the matching right bucket."""

    left_key_indices: tuple
    right_key_indices: tuple
    right_drop_indices: tuple
    how: str
    right_width: int

    def __call__(self, bucket_pair):
        left_rows, right_rows = bucket_pair
        index = {}
        rkeys = self.right_key_indices
        drop = set(self.right_drop_indices)
        for row in right_rows:
            key = tuple(row[i] for i in rkeys)
            rem = tuple(v for i, v in enumerate(row) if i not in drop)
            index.setdefault(key, []).append(rem)
        task = BroadcastJoinTask(
            self.left_key_indices, index, self.how, self.right_width
        )
        return task(left_rows)


@dataclass(frozen=True)
class BucketAggregateTask:
    """Aggregate one hash bucket of rows for a group-by.

    ``aggregates`` is a tuple of (Aggregate, value column index or None).
    Emits one row per group: key columns followed by finished aggregates.
    """

    key_indices: tuple
    aggregates: tuple

    def __call__(self, rows):
        groups = {}
        key_idx = self.key_indices
        aggs = self.aggregates
        for row in rows:
            key = tuple(row[i] for i in key_idx)
            accs = groups.get(key)
            if accs is None:
                accs = [agg.initial() for agg, _unused in aggs]
                groups[key] = accs
            for j, (agg, value_index) in enumerate(aggs):
                value = row[value_index] if value_index is not None else None
                accs[j] = agg.update(accs[j], value)
        out = []
        for key in sorted(groups, key=_group_sort_key):
            accs = groups[key]
            finished = tuple(
                agg.finish(accs[j]) for j, (agg, _unused) in enumerate(aggs)
            )
            out.append(key + finished)
        return out


def _group_sort_key(key):
    """Deterministic ordering for heterogeneous group keys."""
    return tuple((type(v).__name__, v) for v in key)


@dataclass(frozen=True)
class SortPartitionTask:
    """Sort a single partition by key columns with per-key direction."""

    key_indices: tuple
    ascending: tuple

    def __call__(self, rows):
        ordered = list(rows)
        if self.key_indices and all(self.ascending):
            # All-ascending (the common time-ordering case): one sort
            # with a composite key. Lexicographic tuple comparison
            # equals the stable least-significant-key-first multi-pass,
            # at one pass instead of k.
            ordered.sort(key=itemgetter(*self.key_indices))
            return ordered
        # Stable sorts applied from the least-significant key up give a
        # correct multi-key ordering with mixed directions.
        for idx, asc in reversed(list(zip(self.key_indices, self.ascending))):
            ordered.sort(key=lambda r, i=idx: r[i], reverse=not asc)
        return ordered


@dataclass(frozen=True)
class SplitRouteTask:
    """Route one partition's rows into named split groups.

    Emits a list of ``(group, row)`` pairs where the group is the row's
    value in the key column; the driver regroups the pairs into
    per-group partitions, preserving partition index and row order. The
    output is a flat list (not a per-group dict) so fault-injection
    poisoning -- silently dropping the last element -- corrupts the
    routing in a way the differential oracle detects.
    """

    key_index: int

    def __call__(self, rows):
        i = self.key_index
        return [(row[i], row) for row in rows]


@dataclass(frozen=True)
class ColumnarSplitRouteTask:
    """Route one columnar partition's rows into named split groups.

    The columnar sibling of :class:`SplitRouteTask`: one pass over the
    key column buckets row indices by key value (first-appearance
    order), then each group is materialized as a gathered
    :class:`~repro.engine.columnar.ColumnarPartition`. Emits a list of
    ``(group, partition)`` pairs -- a flat list, like the row task's
    pair stream, so fault-injection poisoning (dropping the last
    element) silently loses a whole group and stays visible to the
    differential oracle. Row inputs delegate to the row task.
    """

    key_index: int

    def __call__(self, partition):
        if not isinstance(partition, ColumnarPartition):
            return SplitRouteTask(self.key_index)(partition)
        groups = {}
        for i, value in enumerate(partition.column(self.key_index)):
            indices = groups.get(value)
            if indices is None:
                groups[value] = indices = []
            indices.append(i)
        return [
            (value, partition.gather(indices))
            for value, indices in groups.items()
        ]


@dataclass(frozen=True)
class CarryMapTask:
    """Run a windowed partition function with carry rows from predecessor."""

    func: object

    def __call__(self, partition_and_carry):
        partition, carry = partition_and_carry
        return self.func(partition, carry)


def stable_hash(value):
    """Process- and run-stable hash of a shuffle key.

    The builtin :func:`hash` is salted per interpreter run for strings
    (``PYTHONHASHSEED``), so using it to route shuffle buckets makes
    partition layouts differ across fresh runs -- breaking the engine's
    determinism contract and the fleet layer's byte-identical-resume
    claim. This CRC32-based hash is stable everywhere while preserving
    the invariant the bucket join relies on: values that compare equal
    hash equally, including across numeric types (``1 == 1.0 == True``).
    """
    return zlib.crc32(_stable_bytes(value))


def _stable_bytes(value):
    """Tagged canonical byte encoding of a key value (or key tuple)."""
    if value is None:
        return b"n"
    if isinstance(value, (bool, int, float)):
        if value != value:  # NaN: one canonical bucket for all of them
            return b"f:nan"
        try:
            as_int = int(value)
        except (OverflowError, ValueError):  # infinities
            return b"f:" + repr(float(value)).encode("ascii")
        if value == as_int:
            return b"i:" + repr(as_int).encode("ascii")
        return b"f:" + repr(float(value)).encode("ascii")
    if isinstance(value, str):
        return b"s:" + value.encode("utf-8", "surrogatepass")
    if isinstance(value, bytes):
        return b"b:" + value
    if isinstance(value, tuple):
        parts = [b"t:"]
        for item in value:
            piece = _stable_bytes(item)
            parts.append(str(len(piece)).encode("ascii"))
            parts.append(b":")
            parts.append(piece)
        return b"".join(parts)
    if isinstance(value, frozenset):
        parts = sorted(_stable_bytes(item) for item in value)
        return b"fs:" + b"|".join(parts)
    # Exotic key types fall back to repr; deterministic for values whose
    # repr is (which covers everything the trace domain produces).
    return b"r:" + repr(value).encode("utf-8", "surrogatepass")


def hash_partition(rows, key_indices, num_buckets):
    """Split *rows* into ``num_buckets`` lists by a stable key hash.

    Uses :func:`stable_hash`, not the builtin ``hash``, so the bucket a
    row lands in is identical across interpreter runs, hash seeds and
    worker processes.
    """
    buckets = [[] for _unused in range(num_buckets)]
    for row in rows:
        key = tuple(row[i] for i in key_indices)
        buckets[stable_hash(key) % num_buckets].append(row)
    return buckets


def hash_partition_columnar(partition, key_indices, num_buckets):
    """Columnar :func:`hash_partition`: bucket by index-gather.

    One pass over the key columns assigns every row index a
    :func:`stable_hash` bucket; each bucket is then gathered into a
    fresh :class:`~repro.engine.columnar.ColumnarPartition`. Because
    the scan order and the hash are exactly the row path's, bucket
    contents and intra-bucket row order are identical to
    ``hash_partition(partition.to_rows(), ...)`` -- the Hypothesis
    property in ``tests/engine/test_columnar_wide.py`` pins this,
    including the ``1 == 1.0 == True`` and NaN canonicalization cases
    that :func:`stable_hash` folds into one bucket.
    """
    index_buckets = [[] for _unused in range(num_buckets)]
    for i, key in enumerate(_key_tuples(partition, key_indices)):
        index_buckets[stable_hash(key) % num_buckets].append(i)
    return [partition.gather(indices) for indices in index_buckets]


def split_columnar_evenly(partition, num_partitions):
    """Columnar :func:`split_evenly`: contiguous gather slices."""
    n = len(partition)
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    base, extra = divmod(n, num_partitions)
    out = []
    start = 0
    for i in range(num_partitions):
        size = base + (1 if i < extra else 0)
        out.append(partition.gather(range(start, start + size)))
        start += size
    return out


def split_evenly(rows, num_partitions):
    """Split *rows* into ``num_partitions`` contiguous, balanced blocks."""
    n = len(rows)
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    base, extra = divmod(n, num_partitions)
    out = []
    start = 0
    for i in range(num_partitions):
        size = base + (1 if i < extra else 0)
        out.append(rows[start : start + size])
        start += size
    return out
