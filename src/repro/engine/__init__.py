"""A small distributed-style tabular dataflow engine.

This package is the repository's stand-in for Apache Spark (see
DESIGN.md): lazy logical plans over partitioned row tables, narrow-stage
fusion, hash/broadcast joins, shuffled group-bys, global sorts and
windowed partition maps, executed either serially or on a process pool.
"""

from repro.engine import aggregates
from repro.engine.columnar import (
    BytesColumn,
    ColumnarPartition,
    as_row_partition,
)
from repro.engine.context import EngineContext
from repro.engine.errors import (
    EngineError,
    ExecutionError,
    InjectedFaultError,
    PlanError,
    SchemaError,
    TaskError,
)
from repro.engine.executor import (
    FaultPolicy,
    MultiprocessingExecutor,
    SerialExecutor,
    SimulatedClusterExecutor,
)
from repro.engine.expressions import apply, col, lit, row_apply
from repro.engine.schema import ANY, BOOL, BYTES, FLOAT, INT, STRING, Field, Schema
from repro.engine.storage import TableStore
from repro.engine.table import Table
from repro.engine.window import (
    drop_consecutive_duplicates,
    forward_fill,
    with_gap,
    with_lag,
)

__all__ = [
    "EngineContext",
    "EngineError",
    "ExecutionError",
    "FaultPolicy",
    "InjectedFaultError",
    "PlanError",
    "SchemaError",
    "TaskError",
    "MultiprocessingExecutor",
    "SerialExecutor",
    "SimulatedClusterExecutor",
    "Table",
    "TableStore",
    "BytesColumn",
    "ColumnarPartition",
    "as_row_partition",
    "Schema",
    "Field",
    "aggregates",
    "apply",
    "col",
    "lit",
    "row_apply",
    "with_lag",
    "with_gap",
    "drop_consecutive_duplicates",
    "forward_fill",
    "ANY",
    "BOOL",
    "BYTES",
    "FLOAT",
    "INT",
    "STRING",
]
