"""On-disk table storage.

The paper measures its extraction time as "interpretation followed by
writing the results to the database". :class:`TableStore` provides that
sink: a directory-per-table layout with one pickle file per partition plus
a small JSON manifest, so written tables reload with their partitioning
intact.
"""

from __future__ import annotations

import json
import math
import os
import pickle
import shutil
from pathlib import Path

from repro.engine.columnar import as_row_partition
from repro.engine.errors import ExecutionError
from repro.engine.schema import Schema

_MANIFEST = "manifest.json"


class TableStore:
    """A directory of named, partitioned tables."""

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def table_dir(self, name):
        return self.root / name

    def exists(self, name):
        return (self.table_dir(name) / _MANIFEST).is_file()

    def list_tables(self):
        """Names of all stored tables, sorted (staging dirs excluded)."""
        return sorted(
            p.name for p in self.root.iterdir()
            if not p.name.startswith(".") and (p / _MANIFEST).is_file()
        )

    def write(self, name, table):
        """Materialize *table* and persist it under *name* (overwrites).

        Crash-safe: partitions and manifest are staged in a hidden
        sibling directory that is renamed over the old table only once
        complete, so a crash mid-write leaves either the previous table
        or the new one fully readable -- never a manifest pointing at
        already-deleted partition files.
        """
        partitions = table.collect_partitions()
        directory = self.table_dir(name)
        staging = self.root / ".staging-{}-{}".format(name, os.getpid())
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir(parents=True)
        for i, part in enumerate(partitions):
            path = staging / "part-{:05d}.pkl".format(i)
            # Stored partitions are always row lists, even if a bare
            # columnar Source flows straight into a write: one on-disk
            # layout keeps every manifest reloadable by older readers.
            # as_row_partition already returns a fresh list for
            # columnar partitions and the partition itself otherwise;
            # copying only non-lists avoids duplicating every row
            # partition just to pickle it.
            rows = as_row_partition(part)
            if not isinstance(rows, list):
                rows = list(rows)
            with open(path, "wb") as fh:
                pickle.dump(rows, fh, protocol=pickle.HIGHEST_PROTOCOL)
        manifest = {
            "columns": list(table.schema.names),
            "dtypes": [f.dtype for f in table.schema],
            "num_partitions": len(partitions),
            "num_rows": sum(len(p) for p in partitions),
        }
        with open(staging / _MANIFEST, "w") as fh:
            json.dump(manifest, fh, indent=2)
        if directory.exists():
            retired = self.root / ".retired-{}-{}".format(name, os.getpid())
            if retired.exists():
                shutil.rmtree(retired)
            os.rename(directory, retired)
            os.rename(staging, directory)
            shutil.rmtree(retired)
        else:
            os.rename(staging, directory)
        return manifest

    def read(self, context, name):
        """Load a stored table into *context*, preserving partitions."""
        directory = self.table_dir(name)
        manifest_path = directory / _MANIFEST
        if not manifest_path.is_file():
            raise ExecutionError("no stored table named {!r}".format(name))
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        partitions = []
        for i in range(manifest["num_partitions"]):
            path = directory / "part-{:05d}.pkl".format(i)
            try:
                with open(path, "rb") as fh:
                    partitions.append(pickle.load(fh))
            except FileNotFoundError as exc:
                raise ExecutionError(
                    "stored table {!r} is missing partition file {!r} "
                    "(manifest expects {} partitions)".format(
                        name, path.name, manifest["num_partitions"]
                    ),
                    exc,
                )
        return context.table_from_partitions(
            manifest["columns"], partitions, dtypes=manifest["dtypes"]
        )

    def manifest(self, name):
        """Return the manifest dict of a stored table."""
        with open(self.table_dir(name) / _MANIFEST) as fh:
            return json.load(fh)

    def gc(self):
        """Remove orphaned staging/retired directories; returns their names.

        :meth:`write` stages new partitions in a hidden ``.staging-*``
        sibling and briefly parks the old table as ``.retired-*`` during
        the swap. A crash between stage and rename leaves that debris
        behind -- invisible to readers (:meth:`list_tables` skips hidden
        directories) but consuming disk forever. Safe to call any time
        no write is concurrently in flight on this store.
        """
        removed = []
        for path in sorted(self.root.iterdir()):
            if not path.is_dir():
                continue
            if path.name.startswith((".staging-", ".retired-")):
                shutil.rmtree(path)
                removed.append(path.name)
        return removed

    def delete(self, name):
        """Remove a stored table if present."""
        directory = self.table_dir(name)
        if not directory.is_dir():
            return
        for path in directory.glob("part-*.pkl"):
            path.unlink()
        manifest = directory / _MANIFEST
        if manifest.is_file():
            manifest.unlink()
        try:
            directory.rmdir()
        except OSError:
            pass


def schema_from_manifest(manifest):
    """Rebuild a :class:`Schema` from a stored manifest."""
    return Schema.of(*manifest["columns"], dtypes=manifest["dtypes"])


def write_csv(table, path):
    """Export a table to CSV for spreadsheet-level inspection.

    Cells are rendered with ``str``; None becomes the empty string.
    Suited to result tables (``K_s``, ``R_out``, state representations),
    not to raw ``K_b`` tables whose payload bytes need the pickle or
    binary-trace formats.
    """
    import csv

    rows = table.collect()
    with open(Path(path), "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(table.schema.names)
        for row in rows:
            writer.writerow(
                ["" if v is None else v for v in row]
            )
    return len(rows)


def read_csv(context, path, num_partitions=None):
    """Load a CSV written by :func:`write_csv` back into a table.

    Values parse back as bool (``"True"``/``"False"``), then int, then
    float, else string; empty cells become None. Cells parsing to
    non-finite floats (``"nan"``, ``"inf"``) stay strings -- those
    cells come from string values, and a non-finite float cannot be
    distinguished from one after ``str`` rendering. (CSV is untyped;
    use :class:`TableStore` when exact types must round-trip.)
    """
    import csv

    def parse(cell):
        if cell == "":
            return None
        # Bool before int/float: int("True") fails, but without this
        # branch booleans written as "True"/"False" reload as strings.
        if cell == "True":
            return True
        if cell == "False":
            return False
        for cast in (int, float):
            try:
                value = cast(cell)
            except ValueError:
                continue
            if isinstance(value, float) and not math.isfinite(value):
                return cell
            return value
        return cell

    with open(Path(path), newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        rows = [tuple(parse(cell) for cell in row) for row in reader]
    return context.table_from_rows(header, rows, num_partitions=num_partitions)
