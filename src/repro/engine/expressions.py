"""Column expressions.

Expressions form a small algebra over table columns, mirroring the column
expressions of distributed dataframe APIs. An expression is *unbound* when
built (it references columns by name) and is *bound* against a
:class:`~repro.engine.schema.Schema` before evaluation, which resolves
names to tuple indices.

Every expression object is a plain picklable dataclass so that bound
predicates and projections can be shipped to worker processes by the
multiprocessing executor, the same way Spark serializes closures to its
executors.

Examples
--------
>>> from repro.engine.schema import Schema
>>> e = (col("m_id") == 3) & (col("b_id") == "FC")
>>> bound = e.bind(Schema.of("t", "m_id", "b_id"))
>>> bound((2.0, 3, "FC"))
True
"""

from __future__ import annotations

import operator
from dataclasses import dataclass

from repro.engine.errors import SchemaError


class Expression:
    """Base class for unbound column expressions."""

    def bind(self, schema):
        """Resolve column names against *schema*; return a bound callable."""
        raise NotImplementedError

    # -- operator sugar -------------------------------------------------
    def __eq__(self, other):
        return BinaryOp("eq", self, _wrap(other))

    def __ne__(self, other):
        return BinaryOp("ne", self, _wrap(other))

    def __lt__(self, other):
        return BinaryOp("lt", self, _wrap(other))

    def __le__(self, other):
        return BinaryOp("le", self, _wrap(other))

    def __gt__(self, other):
        return BinaryOp("gt", self, _wrap(other))

    def __ge__(self, other):
        return BinaryOp("ge", self, _wrap(other))

    def __add__(self, other):
        return BinaryOp("add", self, _wrap(other))

    def __sub__(self, other):
        return BinaryOp("sub", self, _wrap(other))

    def __mul__(self, other):
        return BinaryOp("mul", self, _wrap(other))

    def __truediv__(self, other):
        return BinaryOp("div", self, _wrap(other))

    def __and__(self, other):
        return BinaryOp("and", self, _wrap(other))

    def __or__(self, other):
        return BinaryOp("or", self, _wrap(other))

    def __invert__(self):
        return UnaryOp("not", self)

    def is_in(self, values):
        """Membership test against a fixed collection of values."""
        return InSet(self, frozenset(values))

    def is_null(self):
        return UnaryOp("is_null", self)

    def is_not_null(self):
        return UnaryOp("is_not_null", self)

    # Expressions are used as dict keys nowhere; identity hash is fine and
    # required because __eq__ is overloaded to build BinaryOps.
    __hash__ = object.__hash__


def _wrap(value):
    return value if isinstance(value, Expression) else Literal(value)


@dataclass(frozen=True, eq=False)
class Column(Expression):
    """Reference to a column by name."""

    name: str

    def bind(self, schema):
        return BoundColumn(schema.index_of(self.name))


@dataclass(frozen=True, eq=False)
class Literal(Expression):
    """A constant value."""

    value: object

    def bind(self, schema):
        return BoundLiteral(self.value)


_BINARY_OPS = {
    "eq": operator.eq,
    "ne": operator.ne,
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
    "add": operator.add,
    "sub": operator.sub,
    "mul": operator.mul,
    "div": operator.truediv,
}


@dataclass(frozen=True, eq=False)
class BinaryOp(Expression):
    """A binary operation over two sub-expressions."""

    op: str
    left: Expression
    right: Expression

    def bind(self, schema):
        left = self.left.bind(schema)
        right = self.right.bind(schema)
        if self.op == "and":
            return BoundAnd(left, right)
        if self.op == "or":
            return BoundOr(left, right)
        if self.op not in _BINARY_OPS:
            raise SchemaError("unknown binary op {!r}".format(self.op))
        return BoundBinary(self.op, left, right)


@dataclass(frozen=True, eq=False)
class UnaryOp(Expression):
    """A unary operation over one sub-expression."""

    op: str
    operand: Expression

    def bind(self, schema):
        return BoundUnary(self.op, self.operand.bind(schema))


@dataclass(frozen=True, eq=False)
class InSet(Expression):
    """Membership test of a sub-expression's value in a fixed set."""

    operand: Expression
    values: frozenset

    def bind(self, schema):
        return BoundInSet(self.operand.bind(schema), self.values)


@dataclass(frozen=True, eq=False)
class Apply(Expression):
    """Apply a picklable callable to the values of named columns.

    The callable receives one positional argument per column in *columns*.
    It must be picklable (a module-level function or a dataclass with
    ``__call__``) to run on the multiprocessing executor.
    """

    func: object
    columns: tuple

    def bind(self, schema):
        indices = tuple(schema.index_of(c) for c in self.columns)
        return BoundApply(self.func, indices)


@dataclass(frozen=True, eq=False)
class RowApply(Expression):
    """Apply a picklable callable to the whole row as a dict."""

    func: object

    def bind(self, schema):
        return BoundRowApply(self.func, schema.names)


# ---------------------------------------------------------------------------
# Bound (index-resolved) expressions. These are the objects actually shipped
# to workers; each is callable on a row tuple.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BoundColumn:
    index: int

    def __call__(self, row):
        return row[self.index]


@dataclass(frozen=True)
class BoundLiteral:
    value: object

    def __call__(self, row):
        return self.value


@dataclass(frozen=True)
class BoundBinary:
    op: str
    left: object
    right: object

    def __call__(self, row):
        return _BINARY_OPS[self.op](self.left(row), self.right(row))


@dataclass(frozen=True)
class BoundAnd:
    left: object
    right: object

    def __call__(self, row):
        return bool(self.left(row)) and bool(self.right(row))


@dataclass(frozen=True)
class BoundOr:
    left: object
    right: object

    def __call__(self, row):
        return bool(self.left(row)) or bool(self.right(row))


@dataclass(frozen=True)
class BoundUnary:
    op: str
    operand: object

    def __call__(self, row):
        value = self.operand(row)
        if self.op == "not":
            return not value
        if self.op == "is_null":
            return value is None
        if self.op == "is_not_null":
            return value is not None
        raise SchemaError("unknown unary op {!r}".format(self.op))


@dataclass(frozen=True)
class BoundInSet:
    operand: object
    values: frozenset

    def __call__(self, row):
        return self.operand(row) in self.values


@dataclass(frozen=True)
class BoundApply:
    func: object
    indices: tuple

    def __call__(self, row):
        return self.func(*(row[i] for i in self.indices))


@dataclass(frozen=True)
class BoundRowApply:
    func: object
    names: tuple

    def __call__(self, row):
        return self.func(dict(zip(self.names, row)))


# ---------------------------------------------------------------------------
# Public constructors
# ---------------------------------------------------------------------------


def col(name):
    """Reference a column by name."""
    return Column(name)


def lit(value):
    """Wrap a constant value as an expression."""
    return Literal(value)


def apply(func, *columns):
    """Build an expression applying *func* to the listed columns' values."""
    return Apply(func, tuple(columns))


def row_apply(func):
    """Build an expression applying *func* to the row as a dict."""
    return RowApply(func)
