"""Synthetic reproductions of the paper's three data sets (Table 5).

The paper evaluates on traces recorded from one modern premium vehicle
over 20 hours of driving: SYN (13 representative signal types from
different functions), LIG (180 signal types of the light functions) and
STA (78 signal types about the car's state). Those traces are
proprietary; this module rebuilds each data set as a deterministic
vehicle simulation whose *structure* matches Table 5:

=====  ======  =====  =====  =====  =================
 set    types    α      β      γ     ∅ signals/message
=====  ======  =====  =====  =====  =================
SYN       13      6      4      3      1.47
LIG      180     27     71     82      5.11
STA       78      6      1     71      3.66
=====  ======  =====  =====  =====  =================

The branch counts are produced *by construction*: α types are
fast-changing numerics, β types slow ordinals (string levels or slow
numerics), γ types binaries and nominal state machines. The number of
examples scales linearly with the simulated duration instead of the
paper's 20 h (see EXPERIMENTS.md for the scaling).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.extension import CycleViolationExtension, ExtensionSet, GapExtension
from repro.core.reduction import Constraint, ConstraintSet, UnchangedWithinCycle
from repro.network.database import (
    BINARY,
    MessageDefinition,
    NetworkDatabase,
    NOMINAL,
    NUMERIC,
    ORDINAL,
    SignalDefinition,
)
from repro.protocols.signalcodec import SignalEncoding
from repro.protocols.someip import message_id as someip_message_id
from repro.vehicle import behaviors as bhv
from repro.vehicle.ecu import Ecu
from repro.vehicle.gateway import Gateway, Route
from repro.vehicle.schedules import Cyclic
from repro.vehicle.vehicle import VehicleSimulation

#: Ordinal level labels (a configured ordinal vocabulary).
_ORDINAL_LEVELS = ("off", "low", "medium", "high")
#: Nominal state labels (deliberately unordered).
_NOMINAL_STATES = ("driving", "parking", "standby", "charging")

_CAN_MAX_BITS = 64
_LIN_MAX_BITS = 64

#: Bits per signal by generator class.
_ALPHA_BITS = 12
_BETA_NUM_BITS = 8
_BETA_ORD_BITS = 3
_GAMMA_BIN_BITS = 2
_GAMMA_NOM_BITS = 3


@dataclass(frozen=True)
class DatasetSpec:
    """Structural parameters of one data set (a Table 5 column)."""

    name: str
    alpha_types: int
    beta_types: int
    gamma_types: int
    avg_signals_per_message: float
    #: (channel id, protocol) pairs; messages are spread across matching
    #: protocols.
    channels: tuple
    #: Paper-reported values, kept for the Table 5 bench output.
    paper_examples: int
    seed: int = 0
    #: Fraction of α messages additionally routed through the central
    #: gateway (creating the duplicated instances ``e`` removes).
    gateway_fraction: float = 0.3

    @property
    def total_types(self):
        return self.alpha_types + self.beta_types + self.gamma_types


SYN_SPEC = DatasetSpec(
    name="SYN",
    alpha_types=6,
    beta_types=4,
    gamma_types=3,
    avg_signals_per_message=1.47,
    channels=(
        ("FC", "CAN"),
        ("BC", "CAN"),
        ("K-LIN", "LIN"),
        ("ETH", "SOMEIP"),
        ("FR", "FLEXRAY"),
    ),
    paper_examples=13_197_983,
    seed=11,
)

LIG_SPEC = DatasetSpec(
    name="LIG",
    alpha_types=27,
    beta_types=71,
    gamma_types=82,
    avg_signals_per_message=5.11,
    channels=(
        ("BC", "CAN"),
        ("FC", "CAN"),
        ("K-LIN", "LIN"),
    ),
    paper_examples=12_306_327,
    seed=22,
)

STA_SPEC = DatasetSpec(
    name="STA",
    alpha_types=6,
    beta_types=1,
    gamma_types=71,
    avg_signals_per_message=3.66,
    channels=(
        ("DC", "CAN"),
        ("FR", "FLEXRAY"),
    ),
    paper_examples=4_807_891,
    seed=33,
)

SPECS = {"SYN": SYN_SPEC, "LIG": LIG_SPEC, "STA": STA_SPEC}


@dataclass
class DatasetBundle:
    """A generated data set: database, simulation and parameterization."""

    spec: DatasetSpec
    simulation: VehicleSimulation
    alpha_ids: tuple
    beta_ids: tuple
    gamma_ids: tuple
    cycle_times: dict  # s_id -> message cycle time

    @property
    def database(self):
        return self.simulation.database

    @property
    def signal_ids(self):
        return self.alpha_ids + self.beta_ids + self.gamma_ids

    def catalog(self, signal_ids=None):
        """``U_comb`` for this data set (all signals by default)."""
        ids = self.signal_ids if signal_ids is None else signal_ids
        return self.database.translation_catalog(ids)

    def default_constraints(self, signal_ids=None):
        """Unchanged-value reduction preserving cycle violations, per the
        evaluation setup ("identical subsequent signal instances are
        removed as reduction")."""
        ids = self.signal_ids if signal_ids is None else signal_ids
        constraints = tuple(
            Constraint(s_id, True, (UnchangedWithinCycle(self.cycle_times[s_id]),))
            for s_id in ids
        )
        return ConstraintSet(constraints)

    def example_extensions(self):
        """Gap + cycle-violation extensions on the first α signal."""
        if not self.alpha_ids:
            return ExtensionSet()
        s_id = self.alpha_ids[0]
        return ExtensionSet(
            (
                GapExtension(s_id),
                CycleViolationExtension(
                    s_id, self.cycle_times[s_id], tolerance=1.8
                ),
            )
        )

    def byte_records(self, duration):
        return self.simulation.byte_records(duration)

    def record_table(self, context, duration, num_partitions=None):
        return self.simulation.record_table(
            context, duration, num_partitions=num_partitions
        )

    def statistics(self, context, duration):
        """Measured Table 5 row for this data set at the given duration."""
        from repro.core.interpretation import interpret
        from repro.core.preselection import preselect

        k_b = self.record_table(context, duration)
        catalog = self.catalog()
        k_s = interpret(preselect(k_b, catalog), catalog)
        num_messages = k_b.count()
        num_examples = k_s.count()
        return {
            "name": self.spec.name,
            "signal_types": self.spec.total_types,
            "alpha": self.spec.alpha_types,
            "beta": self.spec.beta_types,
            "gamma": self.spec.gamma_types,
            "examples": num_examples,
            "trace_rows": num_messages,
            "avg_signals_per_message": (
                num_examples / num_messages if num_messages else 0.0
            ),
        }


def build_dataset(spec, seed_offset=0):
    """Deterministically generate one data set from its spec.

    *seed_offset* varies the behaviour seeds (not the structure), which
    is how distinct journeys of the same vehicle are produced.
    """
    seed = spec.seed + 1000 * seed_offset
    alpha_ids = tuple(
        "{}_num_{:03d}".format(spec.name.lower(), i)
        for i in range(spec.alpha_types)
    )
    beta_ids = tuple(
        "{}_ord_{:03d}".format(spec.name.lower(), i)
        for i in range(spec.beta_types)
    )
    gamma_ids = tuple(
        "{}_cat_{:03d}".format(spec.name.lower(), i)
        for i in range(spec.gamma_types)
    )

    groups = _allocate_messages(spec, alpha_ids, beta_ids, gamma_ids)
    messages = []
    behaviors_by_message = {}
    cycle_times = {}
    channel_cursor = 0
    ids_per_channel = {c: 0x100 for c, _p in spec.channels}
    lin_ids = {c: 0x10 for c, p in spec.channels if p == "LIN"}
    for group_index, (kind, members) in enumerate(groups):
        channel, protocol = _pick_channel(spec, kind, channel_cursor)
        channel_cursor += 1
        message, behaviors, cycle = _build_message(
            spec,
            kind,
            members,
            group_index,
            channel,
            protocol,
            ids_per_channel,
            lin_ids,
            seed,
        )
        messages.append(message)
        behaviors_by_message[message.name] = behaviors
        for s in members:
            cycle_times[s] = cycle

    database = NetworkDatabase(tuple(messages))
    ecu = Ecu("{}_ECU".format(spec.name))
    for i, message in enumerate(messages):
        ecu.add_transmission(
            message,
            behaviors_by_message[message.name],
            Cyclic(
                message.cycle_time,
                offset=(i % 10) * message.cycle_time / 10.0,
                jitter=message.cycle_time * 0.02,
                seed=seed + i,
            ),
        )
    simulation = VehicleSimulation(database, [ecu])

    routes = _gateway_routes(spec, messages)
    if routes:
        simulation.add_gateway(Gateway("{}_GW".format(spec.name), routes))

    return DatasetBundle(
        spec=spec,
        simulation=simulation,
        alpha_ids=alpha_ids,
        beta_ids=beta_ids,
        gamma_ids=gamma_ids,
        cycle_times=cycle_times,
    )


def build_syn(seed_offset=0):
    return build_dataset(SYN_SPEC, seed_offset)


def build_lig(seed_offset=0):
    return build_dataset(LIG_SPEC, seed_offset)


def build_sta(seed_offset=0):
    return build_dataset(STA_SPEC, seed_offset)


def journeys(spec, count, duration):
    """Raw traces of *count* distinct journeys (lists of byte records).

    All journeys share the vehicle's structure (same database) but have
    different behaviour seeds, like different drives of one car.
    """
    out = []
    for j in range(count):
        bundle = build_dataset(spec, seed_offset=j)
        out.append(bundle.byte_records(duration))
    return out


# ---------------------------------------------------------------------------
# Internal construction helpers
# ---------------------------------------------------------------------------


def _allocate_messages(spec, alpha_ids, beta_ids, gamma_ids):
    """Distribute signal ids into per-class message groups so the overall
    signals-per-message average approaches the spec's target."""
    target_messages = max(1, round(spec.total_types / spec.avg_signals_per_message))
    classes = [
        ("alpha", list(alpha_ids), _ALPHA_BITS),
        ("beta", list(beta_ids), _BETA_ORD_BITS),
        ("gamma", list(gamma_ids), _GAMMA_NOM_BITS),
    ]
    total = spec.total_types
    groups = []
    remaining_messages = target_messages
    remaining_types = total
    for kind, members, bits in classes:
        if not members:
            continue
        share = max(1, round(remaining_messages * len(members) / remaining_types))
        capacity = max(1, (_CAN_MAX_BITS - 4) // max(bits, _ALPHA_BITS if kind == "alpha" else bits))
        while (len(members) + share - 1) // share > capacity:
            share += 1
        remaining_messages = max(1, remaining_messages - share)
        remaining_types -= len(members)
        buckets = [[] for _unused in range(share)]
        for i, s_id in enumerate(members):
            buckets[i % share].append(s_id)
        groups.extend((kind, tuple(b)) for b in buckets if b)
    return groups


def _pick_channel(spec, kind, cursor):
    """Rotate message placement over the data set's channels.

    β/γ messages may live on LIN; α messages need CAN / FlexRay /
    SOME-IP bandwidth.
    """
    candidates = [
        (c, p)
        for c, p in spec.channels
        if kind != "alpha" or p != "LIN"
    ]
    return candidates[cursor % len(candidates)]


def _build_message(
    spec, kind, members, index, channel, protocol, ids_per_channel, lin_ids, seed
):
    signals = []
    behaviors = {}
    bit = 0
    for j, s_id in enumerate(members):
        if kind == "alpha":
            definition, behavior, bits = _alpha_signal(s_id, bit, seed + index * 31 + j)
        elif kind == "beta":
            definition, behavior, bits = _beta_signal(
                s_id, bit, j, seed + index * 37 + j
            )
        else:
            definition, behavior, bits = _gamma_signal(
                s_id, bit, j, seed + index * 41 + j
            )
        signals.append(definition)
        behaviors[s_id] = behavior
        bit += bits
    payload_length = max(1, (bit + 7) // 8)
    if protocol == "FLEXRAY" and payload_length % 2:
        payload_length += 1
    cycle = _cycle_time(kind, index)
    if protocol == "LIN":
        m_id = lin_ids[channel]
        lin_ids[channel] += 1
        if m_id > 0x3F:
            raise ValueError("LIN id space exhausted on {}".format(channel))
        cycle = max(cycle, 0.2)  # LIN masters schedule slowly
    elif protocol == "SOMEIP":
        m_id = someip_message_id(0x0100 + index, 0x8000 + index)
    elif protocol == "FLEXRAY":
        m_id = 1 + (ids_per_channel[channel] - 0x100)
        ids_per_channel[channel] += 1
    else:
        m_id = ids_per_channel[channel]
        ids_per_channel[channel] += 1
    message = MessageDefinition(
        name="{}_{}_{:03d}".format(spec.name, kind.upper(), index),
        message_id=m_id,
        channel=channel,
        protocol=protocol,
        payload_length=payload_length,
        signals=tuple(signals),
        cycle_time=cycle,
    )
    return message, behaviors, cycle


def _cycle_time(kind, index):
    if kind == "alpha":
        return (0.02, 0.05, 0.04, 0.025, 0.1)[index % 5]
    if kind == "beta":
        # Slow cycles keep the numeric ordinals below the rate threshold
        # T (Eq. 2) so they classify as β, not α.
        return (2.0, 1.6, 2.5)[index % 3]
    return (0.2, 0.25, 0.5)[index % 3]


def _alpha_signal(s_id, bit, seed):
    """Fast-changing numeric signal (classified N/H/>2 -> α)."""
    encoding = SignalEncoding(
        start_bit=bit, bit_length=_ALPHA_BITS, scale=0.1, offset=0.0
    )
    variant = seed % 3
    if variant == 0:
        inner = bhv.Sine(
            amplitude=80.0, period=8.0 + (seed % 7), mean=150.0,
            noise=1.5, seed=seed,
        )
    elif variant == 1:
        inner = bhv.RandomWalk(
            step=2.0, seed=seed, start=120.0, minimum=0.0, maximum=300.0
        )
    else:
        inner = bhv.Sawtooth(amplitude=200.0, period=10.0 + (seed % 5), minimum=20.0)
    behavior = bhv.OutlierInjector(
        inner, rate=0.003, magnitude=180.0, seed=seed + 5
    )
    return (
        SignalDefinition(s_id, encoding, unit="unit", data_class=NUMERIC),
        behavior,
        _ALPHA_BITS,
    )


def _beta_signal(s_id, bit, j, seed):
    """Slow ordinal signal: string levels (with rare validity values) or
    slow numerics (classified -> β)."""
    if j % 2 == 0:
        table = tuple(enumerate(_ORDINAL_LEVELS)) + ((7, "invalid"),)
        encoding = SignalEncoding(
            start_bit=bit, bit_length=_BETA_ORD_BITS, value_table=table
        )
        behavior = bhv.Occasionally(
            bhv.OrdinalSteps(_ORDINAL_LEVELS, dwell=4.0 + (seed % 5), seed=seed),
            replacement="invalid",
            rate=0.01,
            seed=seed + 9,
        )
        return (
            SignalDefinition(s_id, encoding, data_class=ORDINAL),
            behavior,
            _BETA_ORD_BITS,
        )
    encoding = SignalEncoding(
        start_bit=bit, bit_length=_BETA_NUM_BITS, scale=1.0
    )
    behavior = bhv.Quantized(
        bhv.Sine(amplitude=40.0, period=120.0 + seed % 60, mean=90.0, seed=seed),
        step=1.0,
    )
    return (
        SignalDefinition(s_id, encoding, data_class=ORDINAL),
        behavior,
        _BETA_NUM_BITS,
    )


def _gamma_signal(s_id, bit, j, seed):
    """Binary or nominal signal (classified -> γ)."""
    if j % 2 == 0:
        table = ((0, "OFF"), (1, "ON"), (3, "invalid"))
        encoding = SignalEncoding(
            start_bit=bit, bit_length=_GAMMA_BIN_BITS, value_table=table
        )
        behavior = bhv.Toggle(
            period=20.0 + 7 * (seed % 5), on_value="ON", off_value="OFF"
        )
        return (
            SignalDefinition(s_id, encoding, data_class=BINARY),
            behavior,
            _GAMMA_BIN_BITS,
        )
    table = tuple(enumerate(_NOMINAL_STATES)) + ((7, "invalid"),)
    encoding = SignalEncoding(
        start_bit=bit, bit_length=_GAMMA_NOM_BITS, value_table=table
    )
    transitions = {
        "driving": (("parking", 1.0), ("standby", 0.5), ("driving", 3.0)),
        "parking": (("driving", 1.0), ("charging", 0.8), ("parking", 2.0)),
        "standby": (("driving", 1.0), ("standby", 1.0)),
        "charging": (("parking", 1.0), ("charging", 2.0)),
    }
    behavior = bhv.StateMachine(
        states=_NOMINAL_STATES,
        transitions=transitions,
        dwell=6.0 + (seed % 7),
        seed=seed,
    )
    return (
        SignalDefinition(s_id, encoding, data_class=NOMINAL),
        behavior,
        _GAMMA_NOM_BITS,
    )


def _gateway_routes(spec, messages):
    """Route a fraction of α CAN messages onto a second CAN channel."""
    can_channels = [c for c, p in spec.channels if p == "CAN"]
    if len(can_channels) < 2:
        return ()
    src, dst = can_channels[0], can_channels[1]
    candidates = [
        m for m in messages if m.channel == src and "ALPHA" in m.name
    ]
    if not candidates:
        return ()
    count = max(1, int(len(candidates) * spec.gateway_fraction + 0.5))
    # Forwarded copies are re-identified into a dedicated id range so
    # they never collide with the destination channel's native messages.
    return tuple(
        Route(src, m.message_id, dst, delay=0.0015, dst_message_id=0x700 + i)
        for i, m in enumerate(candidates[:count])
    )
