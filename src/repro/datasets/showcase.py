"""The showcase vehicle: every advanced protocol feature in one trace.

Not part of the paper's Table 5 evaluation -- a deliberately dense
vehicle that exercises the corner cases of the interpretation layer in
one journey:

* a **multiplexed** CAN message (selector + page-dependent signals);
* a **SOME/IP** message with a presence-conditional payload (optional
  sections governed by the mask byte);
* a message whose signal is **re-packaged by a signal-level gateway**
  into a different layout on another channel (so the equality check
  ``e`` must match values across layouts);
* a signal present only in **notification-type** SOME/IP instances
  (an m_info-dependent rule).

Used by tests and as a template for modelling complex real messages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.database import (
    BINARY,
    MessageDefinition,
    NetworkDatabase,
    NOMINAL,
    NUMERIC,
    SignalDefinition,
)
from repro.protocols.signalcodec import MOTOROLA, SignalEncoding
from repro.protocols.someip import ConditionalLayout, OptionalSection, message_id
from repro.vehicle import behaviors as bhv
from repro.vehicle.ecu import Ecu
from repro.vehicle.gateway import SignalGateway, SignalRoute
from repro.vehicle.schedules import Cyclic
from repro.vehicle.vehicle import VehicleSimulation


@dataclass
class ShowcaseBundle:
    """The built showcase vehicle with its interesting signal ids."""

    simulation: VehicleSimulation
    mux_signals: tuple
    optional_signals: tuple
    repacked_signal: str
    notification_signal: str

    @property
    def database(self):
        return self.simulation.database

    def catalog(self, signal_ids=None):
        return self.database.translation_catalog(signal_ids)

    def record_table(self, context, duration, num_partitions=None):
        return self.simulation.record_table(
            context, duration, num_partitions=num_partitions
        )

    def notification_catalog(self):
        """Catalog for the door signal gated on SOME/IP notifications.

        Demonstrates the m_info-dependent rule form: the signal is only
        interpreted from instances whose message_type is NOTIFICATION
        (0x02); error responses with the same id are skipped.
        """
        import dataclasses

        from repro.core.rules import RuleCatalog

        base = self.catalog([self.notification_signal])
        gated = tuple(
            dataclasses.replace(
                u,
                rule=dataclasses.replace(
                    u.rule, required_info=(("message_type", 0x02),)
                ),
            )
            for u in base
        )
        return RuleCatalog(gated)


def build_showcase(seed=0):
    """Build the showcase vehicle."""
    # -- multiplexed suspension message ------------------------------------
    page = SignalDefinition("sus_page", SignalEncoding(0, 8))
    front = SignalDefinition(
        "sus_front", SignalEncoding(8, 16, scale=0.1), mux_value=0,
        data_class=NUMERIC,
    )
    rear = SignalDefinition(
        "sus_rear", SignalEncoding(8, 16, scale=0.1), mux_value=1,
        data_class=NUMERIC,
    )
    suspension = MessageDefinition(
        "SUSPENSION", 0x310, "CH", "CAN", 3, (page, front, rear),
        cycle_time=0.05, multiplexor="sus_page",
    )

    # -- SOME/IP message with optional sections --------------------------------
    layout = ConditionalLayout(
        (OptionalSection(0, 2), OptionalSection(1, 1))
    )
    obj_distance = SignalDefinition(
        "obj_distance", SignalEncoding(0, 16, scale=0.01), section_bit=0,
        unit="m", data_class=NUMERIC,
    )
    obj_class = SignalDefinition(
        "obj_class",
        SignalEncoding(
            0, 3,
            value_table=(
                (0, "none"), (1, "car"), (2, "truck"), (3, "pedestrian"),
            ),
        ),
        section_bit=1,
        data_class=NOMINAL,
    )
    objects = MessageDefinition(
        "OBJECT_LIST", message_id(0x0210, 0x8001), "ETH", "SOMEIP", 8,
        (obj_distance, obj_class), cycle_time=0.1, layout=layout,
    )

    # -- yaw rate, re-packaged by the signal gateway ----------------------------
    yaw = SignalDefinition(
        "yaw_rate", SignalEncoding(0, 16, scale=0.01, offset=-300.0),
        unit="deg/s", data_class=NUMERIC,
    )
    dynamics = MessageDefinition(
        "DYNAMICS", 0x80, "CH", "CAN", 2, (yaw,), cycle_time=0.02
    )
    yaw_repack = SignalDefinition(
        "yaw_rate",
        SignalEncoding(15, 16, byte_order=MOTOROLA, scale=0.01, offset=-300.0),
        unit="deg/s", data_class=NUMERIC,
    )
    dynamics_repack = MessageDefinition(
        "DYNAMICS_REPACK", 0x81, "DC", "CAN", 4, (yaw_repack,),
        cycle_time=0.02,
    )

    # -- door state: carried only in notifications ------------------------------
    door = SignalDefinition(
        "door_open",
        SignalEncoding(0, 1, value_table=((0, "OFF"), (1, "ON"))),
        data_class=BINARY,
    )
    doors = MessageDefinition(
        "DOORS", message_id(0x0211, 0x8002), "ETH", "SOMEIP", 1, (door,),
        cycle_time=0.5,
    )

    database = NetworkDatabase((suspension, objects, dynamics, doors))

    ecu = (
        Ecu("ShowcaseEcu")
        .add_transmission(
            suspension,
            {
                "sus_page": _PageSelector(),
                "sus_front": _PageGated(
                    bhv.Sine(20.0, 5.0, mean=50.0, seed=seed + 1),
                    _PageSelector(), page=0,
                ),
                "sus_rear": _PageGated(
                    bhv.Sine(20.0, 5.0, mean=55.0, seed=seed + 2),
                    _PageSelector(), page=1,
                ),
            },
            Cyclic(0.05, seed=seed + 3),
        )
        .add_transmission(
            objects,
            {
                "obj_distance": bhv.RandomWalk(
                    step=0.5, seed=seed + 4, start=30.0,
                    minimum=1.0, maximum=120.0,
                ),
                "obj_class": bhv.StateMachine(
                    ("none", "car", "truck", "pedestrian"),
                    {
                        "none": (("car", 1.0), ("none", 3.0)),
                        "car": (("none", 1.0), ("truck", 0.3), ("car", 2.0)),
                        "truck": (("car", 1.0), ("truck", 1.0)),
                        "pedestrian": (("none", 1.0),),
                    },
                    dwell=2.0,
                    seed=seed + 5,
                ),
            },
            Cyclic(0.1, seed=seed + 6),
        )
        .add_transmission(
            dynamics,
            {"yaw_rate": bhv.Sine(15.0, 8.0, mean=0.0, noise=0.1, seed=seed + 7)},
            Cyclic(0.02, seed=seed + 8),
        )
        .add_transmission(
            doors,
            {"door_open": bhv.Toggle(40.0, "ON", "OFF")},
            Cyclic(0.5, seed=seed + 9),
        )
    )
    simulation = VehicleSimulation(database, [ecu])
    simulation.add_gateway(
        SignalGateway(
            "REPACK_GW",
            database=database,
            routes=(
                SignalRoute("CH", 0x80, ("yaw_rate",), dynamics_repack,
                            delay=0.001),
            ),
        )
    )
    return ShowcaseBundle(
        simulation=simulation,
        mux_signals=("sus_front", "sus_rear"),
        optional_signals=("obj_distance", "obj_class"),
        repacked_signal="yaw_rate",
        notification_signal="door_open",
    )


@dataclass
class _PageSelector(bhv.Behavior):
    """Alternates the multiplexor page 0/1 deterministically per send.

    Driven by time so it stays a pure function of the schedule.
    """

    period: float = 0.1

    def sample(self, t):
        return int(t / (self.period / 2)) % 2


@dataclass
class _PageGated(bhv.Behavior):
    """A mux-page-dependent signal: None (absent) off its page.

    The message encoder treats None as "not part of this instance", so
    each frame carries only the active page's signals.
    """

    inner: bhv.Behavior
    selector: _PageSelector
    page: int

    def sample(self, t):
        if self.selector.sample(t) != self.page:
            return None
        return self.inner.sample(t)

    def reset(self):
        self.inner.reset()
