"""Synthetic data sets mirroring the paper's SYN / LIG / STA (Table 5)."""

from repro.datasets.fleet import BatchExtractor, Fleet, FleetReport, JourneyRef
from repro.datasets.showcase import ShowcaseBundle, build_showcase
from repro.datasets.synthetic import (
    LIG_SPEC,
    SPECS,
    STA_SPEC,
    SYN_SPEC,
    DatasetBundle,
    DatasetSpec,
    build_dataset,
    build_lig,
    build_sta,
    build_syn,
    journeys,
)

__all__ = [
    "Fleet",
    "BatchExtractor",
    "FleetReport",
    "JourneyRef",
    "build_showcase",
    "ShowcaseBundle",
    "DatasetSpec",
    "DatasetBundle",
    "SYN_SPEC",
    "LIG_SPEC",
    "STA_SPEC",
    "SPECS",
    "build_dataset",
    "build_syn",
    "build_lig",
    "build_sta",
    "journeys",
]
