"""Fleet-scale trace processing.

Fig. 1 of the paper: hundreds of vehicles record journeys on-board
("e.g. at BMW Group 500 cars produce 1.5 TB per day"); the traces are
analyzed off-board per domain. This module models that outer loop: a
:class:`Fleet` of simulated vehicles producing journeys, and a
:class:`BatchExtractor` that runs the one-time-parameterized pipeline
over every journey, writing per-journey results into a table store and
aggregating a fleet report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pipeline import PreprocessingPipeline
from repro.datasets.synthetic import build_dataset
from repro.obs import MetricsRegistry, stopwatch
from repro.protocols.frames import BYTE_RECORD_COLUMNS


class FleetError(ValueError):
    """Raised for invalid fleet configuration."""


@dataclass(frozen=True)
class JourneyRef:
    """Identifies one journey of one vehicle."""

    vehicle_id: int
    journey_id: int

    @property
    def name(self):
        return "vehicle{:03d}_journey{:03d}".format(
            self.vehicle_id, self.journey_id
        )

    def seed_offset(self):
        return self.vehicle_id * 1000 + self.journey_id


@dataclass
class Fleet:
    """A fleet of structurally identical vehicles (one Table 5 spec).

    All vehicles share the communication database (same model line);
    behaviour seeds differ per vehicle and journey, so traces differ the
    way different cars' drives do.
    """

    spec: object  # DatasetSpec
    num_vehicles: int
    journeys_per_vehicle: int

    def __post_init__(self):
        if self.num_vehicles < 1 or self.journeys_per_vehicle < 1:
            raise FleetError("fleet needs >= 1 vehicle and journey")
        # One reference bundle defines the shared database/parameters.
        self._reference = build_dataset(self.spec)

    @property
    def database(self):
        return self._reference.database

    @property
    def reference_bundle(self):
        return self._reference

    def journey_refs(self):
        """All journeys in deterministic order."""
        return [
            JourneyRef(v, j)
            for v in range(self.num_vehicles)
            for j in range(self.journeys_per_vehicle)
        ]

    def record_journey(self, ref, duration):
        """Simulate and record one journey's byte records."""
        bundle = build_dataset(self.spec, seed_offset=ref.seed_offset())
        return bundle.byte_records(duration)


@dataclass
class JourneyResult:
    """Outcome of processing one journey."""

    ref: JourneyRef
    trace_rows: int
    extracted_rows: int
    seconds: float
    table_name: str


@dataclass
class FleetReport:
    """Aggregate over a batch run."""

    results: list = field(default_factory=list)
    #: Per-journey extraction metrics (``fleet.journey_seconds``
    #: histogram, row counters) recorded by :class:`BatchExtractor`.
    metrics: object = field(default_factory=MetricsRegistry)

    def __len__(self):
        return len(self.results)

    @property
    def total_trace_rows(self):
        return sum(r.trace_rows for r in self.results)

    @property
    def total_extracted_rows(self):
        return sum(r.extracted_rows for r in self.results)

    @property
    def total_seconds(self):
        return sum(r.seconds for r in self.results)

    def summary(self):
        return {
            "journeys": len(self.results),
            "trace_rows": self.total_trace_rows,
            "extracted_rows": self.total_extracted_rows,
            "seconds": round(self.total_seconds, 3),
        }


@dataclass
class BatchExtractor:
    """Runs the parameterized extraction over every journey of a fleet.

    Per journey: record (or accept pre-recorded records), run lines 3-6
    of Algorithm 1 and persist the signal table under the journey's name.
    The same :class:`~repro.core.pipeline.PipelineConfig` -- the domain's
    one-time parameterization -- applies to all journeys.
    """

    fleet: Fleet
    config: object  # PipelineConfig
    store: object  # TableStore
    duration: float = 30.0

    def run(self, context, refs=None, journeys=None):
        """Process journeys; returns a :class:`FleetReport`.

        *journeys* may supply pre-recorded byte-record lists parallel to
        *refs* (so callers can re-use recorded traces); otherwise each
        journey is simulated on demand.
        """
        if refs is None:
            refs = self.fleet.journey_refs()
        pipeline = PreprocessingPipeline(self.config)
        report = FleetReport()
        for index, ref in enumerate(refs):
            if journeys is not None:
                records = journeys[index]
            else:
                records = self.fleet.record_journey(ref, self.duration)
            k_b = context.table_from_rows(
                list(BYTE_RECORD_COLUMNS), records
            )
            with stopwatch() as watch:
                k_s = pipeline.extract_signals(k_b, cache=False)
                manifest = self.store.write(ref.name, k_s)
            report.metrics.observe("fleet.journey_seconds", watch.seconds)
            report.metrics.inc("fleet.trace_rows", len(records))
            report.metrics.inc("fleet.extracted_rows", manifest["num_rows"])
            report.results.append(
                JourneyResult(
                    ref=ref,
                    trace_rows=len(records),
                    extracted_rows=manifest["num_rows"],
                    seconds=watch.seconds,
                    table_name=ref.name,
                )
            )
        return report

    def read_journey(self, context, ref):
        """Load one journey's extracted signal table back."""
        return self.store.read(context, ref.name)
