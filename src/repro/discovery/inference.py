"""Encoding inference: tokens -> signed/classified/scaled signals.

Given a token's geometry, this stage re-reads the payload stream
through a compiled raw extractor and decides, from the raw value
series alone:

* **signedness** -- two's-complement values near zero keep their top
  bits equal to the sign bit; a *plateau* of >= 2 identical top-bit
  series marks a signed signal (an unsigned counter's top bits diverge);
* **data class** -- ``counter`` when nearly all consecutive deltas equal
  one modal nonzero step (mod ``2**L``, so wraps count), ``constant``
  for a single distinct raw, ``checksum`` for wide tokens whose *every*
  bit flips near-independently (no significance gradient -- CRC-like),
  else ``sensor``;
* **scale/offset** -- identity unless a ``range_hints`` entry maps the
  observed raw range onto a known physical range.

Short payloads surface as
:class:`~repro.protocols.signalcodec.ShortPayloadError` during
extraction and are *counted*, not fatal -- truncated frames simply
contribute no sample, mirroring the pipeline's ``short_payload=skip``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.discovery.observations import DiscoveryConfig
from repro.protocols.signalcodec import ShortPayloadError

SENSOR = "sensor"
COUNTER = "counter"
CONSTANT = "constant"
CHECKSUM = "checksum"

DATA_CLASSES = (SENSOR, COUNTER, CONSTANT, CHECKSUM)


@dataclass(frozen=True)
class DiscoveredSignal:
    """One fully inferred signal: geometry + encoding semantics."""

    token: object
    signed: bool = False
    data_class: str = SENSOR
    scale: float = 1.0
    offset: float = 0.0
    samples: int = 0
    distinct: int = 0
    short_payload_skipped: int = 0

    @property
    def first_bit(self):
        return self.token.first_bit

    @property
    def bit_length(self):
        return self.token.bit_length

    def encoding(self, **kwargs):
        kwargs.setdefault("signed", self.signed)
        kwargs.setdefault("scale", self.scale)
        kwargs.setdefault("offset", self.offset)
        return self.token.encoding(**kwargs)


def infer_signals(observations, tokens, config=None):
    """Infer a :class:`DiscoveredSignal` for each token of one message."""
    if config is None:
        config = DiscoveryConfig()
    stats = observations.stats()
    signals = []
    for token in tokens:
        signals.append(
            _infer_one(observations, token, stats, config)
        )
    return signals


def _infer_one(observations, token, stats, config):
    extractor = token.encoding(signed=False).compile_raw_extractor()
    raws = []
    skipped = 0
    for payload in observations.payloads:
        try:
            raws.append(extractor(payload))
        except ShortPayloadError:
            skipped += 1
    distinct = len(set(raws))
    if token.constant or distinct <= 1:
        return _scaled(
            DiscoveredSignal(
                token=token,
                data_class=CONSTANT,
                samples=len(raws),
                distinct=distinct,
                short_payload_skipped=skipped,
            ),
            observations, token, raws, config,
        )
    signed = _looks_signed(raws, token.bit_length)
    data_class = _classify(token, raws, stats, config)
    return _scaled(
        DiscoveredSignal(
            token=token,
            signed=signed,
            data_class=data_class,
            samples=len(raws),
            distinct=distinct,
            short_payload_skipped=skipped,
        ),
        observations, token, raws, config,
    )


def _looks_signed(raws, bit_length):
    """Two's-complement detection via the top-bit plateau.

    In a signed signal whose values stay near zero, every bit above the
    value's magnitude equals the sign bit -- so the bit series at
    positions L-1, L-2, ... are *identical* until magnitude bits begin.
    A plateau of length >= 2 only happens for signed data (an unsigned
    ramp's top two bit series differ as soon as the range is exercised).
    """
    if bit_length < 2:
        return False
    top = bit_length - 1
    sign_series = [(r >> top) & 1 for r in raws]
    if not any(sign_series):
        return False  # never negative: indistinguishable from unsigned
    plateau = 1
    for j in range(bit_length - 2, -1, -1):
        if all(((r >> j) & 1) == s for r, s in zip(raws, sign_series)):
            plateau += 1
        else:
            break
    return plateau >= 2


def _classify(token, raws, stats, config):
    if _is_counter(raws, token.bit_length, config):
        return COUNTER
    if _is_checksum(token, stats, config):
        return CHECKSUM
    return SENSOR


def _is_counter(raws, bit_length, config):
    if len(raws) < 3:
        return False
    modulus = 1 << bit_length
    deltas = Counter(
        (b - a) % modulus for a, b in zip(raws, raws[1:])
    )
    deltas.pop(0, None)  # repeats don't vote either way
    if not deltas:
        return False
    step, count = deltas.most_common(1)[0]
    total = sum(deltas.values())
    return count / total >= config.counter_fraction


def _is_checksum(token, stats, config):
    """CRC-like tokens: wide, and every bit flips like an independent coin."""
    if token.bit_length < config.checksum_min_width:
        return False
    rates = [stats.flip_rate(p) for p in token.positions]
    if min(rates) < config.checksum_min_flip_rate:
        return False
    return sum(rates) / len(rates) >= config.checksum_mean_flip_rate


def _scaled(signal, observations, token, raws, config):
    hints = config.range_hints
    if not hints or not raws:
        return signal
    key = (observations.channel, observations.message_id, token.first_bit)
    hint = hints.get(key)
    if hint is None:
        return signal
    lo, hi = hint
    raw_lo, raw_hi = min(raws), max(raws)
    if raw_hi == raw_lo or hi <= lo:
        return signal
    scale = (hi - lo) / (raw_hi - raw_lo)
    offset = lo - scale * raw_lo
    return DiscoveredSignal(
        token=signal.token,
        signed=signal.signed,
        data_class=signal.data_class,
        scale=scale,
        offset=offset,
        samples=signal.samples,
        distinct=signal.distinct,
        short_payload_skipped=signal.short_payload_skipped,
    )
