"""DBC-less signal discovery: raw traces -> translation tuples.

The discovery front end makes the framework available when its
translation catalog ``U_rel`` is not: it tokenizes raw payload streams
into signal boundaries from per-bit flip statistics (ACTT-style cuts
with ByCAN-style cross-byte refinement), infers each token's byte
order, signedness and data class, and synthesizes a
:class:`~repro.network.NetworkDatabase` + ``RuleCatalog`` the existing
preselect/interpret/reduce pipeline consumes unchanged. A partial
documented database merges in with documented signals winning. The
validation harness scores recovered boundaries against ground-truth
DBCs and exports schema-validated ``repro.discovery/1`` reports.

See ``docs/DISCOVERY.md`` for the algorithm and merge semantics.
"""

from repro.discovery.inference import (
    CHECKSUM,
    CONSTANT,
    COUNTER,
    DATA_CLASSES,
    SENSOR,
    DiscoveredSignal,
    infer_signals,
)
from repro.discovery.observations import (
    BitStats,
    DiscoveryConfig,
    DiscoveryError,
    MessageObservations,
    bit_statistics,
    collect_observations,
    collect_observations_file,
)
from repro.discovery.synthesis import (
    DiscoveryResult,
    MessageDiscovery,
    discover,
    discover_message,
    message_name,
    signal_name,
    synthesize_database,
)
from repro.discovery.tokenizer import Token, tokenize
from repro.discovery.validation import (
    DISCOVERY_KNOBS,
    DISCOVERY_REPORT_FORMAT,
    DiscoveryReport,
    discoverable_signals,
    discovery_degradation,
    matched_signal_names,
    observed_boundary,
    pipeline_coverage,
    score_discovery,
    unscored_report,
    validate_discovery_report,
)

__all__ = [
    "BitStats",
    "CHECKSUM",
    "CONSTANT",
    "COUNTER",
    "DATA_CLASSES",
    "DISCOVERY_KNOBS",
    "DISCOVERY_REPORT_FORMAT",
    "DiscoveredSignal",
    "DiscoveryConfig",
    "DiscoveryError",
    "DiscoveryReport",
    "DiscoveryResult",
    "MessageDiscovery",
    "MessageObservations",
    "SENSOR",
    "Token",
    "bit_statistics",
    "collect_observations",
    "collect_observations_file",
    "discover",
    "discover_message",
    "discoverable_signals",
    "discovery_degradation",
    "infer_signals",
    "matched_signal_names",
    "message_name",
    "observed_boundary",
    "pipeline_coverage",
    "score_discovery",
    "signal_name",
    "synthesize_database",
    "tokenize",
    "unscored_report",
    "validate_discovery_report",
]
