"""Validation harness: score recovered boundaries against ground truth.

Scoring is against the **observed** ground truth: a truth signal's
boundary, for matching purposes, is the set of its bit positions that
actually *vary* in the trace. Bits a signal owns but never exercises
(the top bits of a state machine that visited two of eight states, the
high half of a range never reached) are fundamentally unobservable from
payload statistics -- no discovery algorithm can recover them, and the
standard CAN reverse-engineering literature scores accordingly. Both
sides of the comparison derive from the same trace, so the definition
is self-consistent; for degradation runs the *clean* trace's
observations define the truth while discovery sees the corrupted one.

A truth signal is **discoverable** when it is unconditioned (no
``mux_value``, no ``section_bit``) and its observed boundary is
non-empty. A recovered token **matches** when its bit set equals the
observed boundary exactly; its **encoding** is additionally correct
when the significance order of those bits and the signedness agree.

The harness emits a schema-validated ``repro.discovery/1`` report --
the ``repro.obs/1`` metric payload plus per-message score rows and
trace-wide totals -- and two end-to-end checks: feeding the synthesized
catalog through the unchanged preprocessing pipeline
(:func:`pipeline_coverage`) and sweeping corruption severities
(:func:`discovery_degradation`).
"""

from __future__ import annotations

from repro.discovery.inference import CHECKSUM, CONSTANT
from repro.discovery.observations import collect_observations
from repro.discovery.synthesis import discover, signal_name
from repro.obs.report import REPORT_FORMAT, ReportSchemaError, RunReport
from repro.obs.report import validate_report

DISCOVERY_REPORT_FORMAT = "repro.discovery/1"

_MESSAGE_FIELDS = (
    "channel", "message_id", "frames", "discoverable", "recovered",
    "matched", "precision", "recall", "f1",
)
_TOTAL_FIELDS = (
    "messages", "discoverable", "recovered", "matched", "precision",
    "recall", "f1", "encoding_matched", "encoding_accuracy",
    "spurious_messages", "constant_tokens", "checksum_tokens",
)


class DiscoveryReport:
    """A ``repro.discovery/1`` report: obs payload + scores."""

    def __init__(self, report, messages, totals):
        self._report = report
        self.messages = messages
        self.totals = totals

    @property
    def metrics(self):
        return self._report.metrics

    @property
    def spans(self):
        return self._report.spans

    @property
    def meta(self):
        return self._report.meta

    def set_meta(self, **kwargs):
        self._report.set_meta(**kwargs)

    def to_dict(self):
        payload = self._report.to_dict()
        payload["format"] = DISCOVERY_REPORT_FORMAT
        payload["messages"] = [dict(row) for row in self.messages]
        payload["totals"] = dict(self.totals)
        return payload

    def to_json(self, indent=2):
        import json

        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path):
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")


def validate_discovery_report(payload):
    """Schema-check a ``repro.discovery/1`` payload (dict or JSON str)."""
    if isinstance(payload, str):
        import json

        payload = json.loads(payload)
    if not isinstance(payload, dict):
        raise ReportSchemaError("report payload must be a dict")
    if payload.get("format") != DISCOVERY_REPORT_FORMAT:
        raise ReportSchemaError(
            "format must be {!r}, got {!r}".format(
                DISCOVERY_REPORT_FORMAT, payload.get("format")
            )
        )
    messages = payload.get("messages")
    if not isinstance(messages, list):
        raise ReportSchemaError("messages must be a list")
    for row in messages:
        if not isinstance(row, dict):
            raise ReportSchemaError("message rows must be dicts")
        for fieldname in _MESSAGE_FIELDS:
            if fieldname not in row:
                raise ReportSchemaError(
                    "message row missing {!r}".format(fieldname)
                )
        for fieldname in ("precision", "recall", "f1"):
            value = row[fieldname]
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ReportSchemaError(
                    "message {!r} must be a number".format(fieldname)
                )
    totals = payload.get("totals")
    if not isinstance(totals, dict):
        raise ReportSchemaError("totals must be a dict")
    for fieldname in _TOTAL_FIELDS:
        if fieldname not in totals:
            raise ReportSchemaError(
                "totals missing {!r}".format(fieldname)
            )
        value = totals[fieldname]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ReportSchemaError(
                "totals {!r} must be a number".format(fieldname)
            )
    obs_payload = {
        key: value
        for key, value in payload.items()
        if key not in ("messages", "totals")
    }
    obs_payload["format"] = REPORT_FORMAT
    validate_report(obs_payload)
    return payload


def observed_boundary(encoding, stats):
    """The truth signal's bit positions that vary in the trace."""
    observed = []
    for position in encoding.bit_positions():
        if position >= stats.num_bits:
            continue
        ones = stats.ones[position]
        if 0 < ones < stats.covered[position]:
            observed.append(position)
    return observed


def _f1(precision, recall):
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def _ratio(numerator, denominator):
    return numerator / denominator if denominator else 0.0


def score_discovery(truth, result, truth_observations=None,
                    report_name="discovery.run"):
    """Score a :class:`DiscoveryResult` against a truth database.

    *truth_observations* supplies the streams defining observed
    boundaries; it defaults to the observations discovery itself ran on
    (the clean-trace case). Degradation sweeps pass the *clean* trace's
    observations here while ``result`` comes from the corrupted one.
    """
    if truth_observations is None:
        truth_observations = result.observations
    metrics = result.metrics if result.metrics is not None else None
    report = RunReport(report_name, metrics=metrics)
    rows = []
    total = {
        "messages": 0, "discoverable": 0, "recovered": 0, "matched": 0,
        "encoding_matched": 0, "spurious_messages": 0,
        "constant_tokens": 0, "checksum_tokens": 0,
    }
    truth_keys = set()
    for message in truth.messages:
        key = (message.channel, message.message_id)
        truth_keys.add(key)
        truth_stream = truth_observations.get(key)
        discovery = result.messages.get(key)
        if truth_stream is None:
            continue  # message never appeared in the trace
        total["messages"] += 1
        stats = truth_stream.stats()
        boundaries = {}
        for signal in message.signals:
            if signal.mux_value is not None or signal.section_bit is not None:
                continue  # conditional presence: not scored
            observed = observed_boundary(signal.encoding, stats)
            if observed:
                boundaries[frozenset(observed)] = (signal, tuple(observed))
        recovered = []
        if discovery is not None:
            for signal in discovery.signals:
                if signal.data_class == CONSTANT:
                    total["constant_tokens"] += 1
                    continue
                if signal.data_class == CHECKSUM:
                    total["checksum_tokens"] += 1
                recovered.append(signal)
        matched = 0
        encoding_matched = 0
        for signal in recovered:
            hit = boundaries.get(signal.token.bit_set())
            if hit is None:
                continue
            matched += 1
            truth_signal, observed = hit
            truth_order = tuple(
                p for p in truth_signal.encoding.bit_positions()
                if p in signal.token.bit_set()
            )
            if (
                tuple(signal.token.positions) == truth_order
                and signal.signed == truth_signal.encoding.signed
            ):
                encoding_matched += 1
        precision = _ratio(matched, len(recovered))
        recall = _ratio(matched, len(boundaries))
        rows.append({
            "channel": str(message.channel),
            "message_id": message.message_id,
            "frames": len(truth_stream),
            "discoverable": len(boundaries),
            "recovered": len(recovered),
            "matched": matched,
            "precision": precision,
            "recall": recall,
            "f1": _f1(precision, recall),
        })
        total["discoverable"] += len(boundaries)
        total["recovered"] += len(recovered)
        total["matched"] += matched
        total["encoding_matched"] += encoding_matched
    for key in result.messages:
        if key not in truth_keys:
            total["spurious_messages"] += 1
    precision = _ratio(total["matched"], total["recovered"])
    recall = _ratio(total["matched"], total["discoverable"])
    total["precision"] = precision
    total["recall"] = recall
    total["f1"] = _f1(precision, recall)
    total["encoding_accuracy"] = _ratio(
        total["encoding_matched"], total["matched"]
    )
    registry = report.metrics
    registry.set_gauge("discovery.boundary_precision", precision)
    registry.set_gauge("discovery.boundary_recall", recall)
    registry.set_gauge("discovery.boundary_f1", total["f1"])
    registry.set_gauge(
        "discovery.encoding_accuracy", total["encoding_accuracy"]
    )
    return DiscoveryReport(report, rows, total)


def unscored_report(result, report_name="discovery.run"):
    """A ``repro.discovery/1`` report with no ground truth to score by.

    All score fields are zero and no per-message rows are emitted; the
    metric payload still carries the full ``discovery.*`` counters, so
    truth-less production runs export the same schema.
    """
    report = RunReport(report_name, metrics=result.metrics)
    recovered = sum(
        1
        for discovery in result.messages.values()
        for signal in discovery.signals
        if signal.data_class != CONSTANT
    )
    totals = {name: 0 for name in _TOTAL_FIELDS}
    totals["messages"] = len(result.messages)
    totals["recovered"] = recovered
    totals["precision"] = 0.0
    totals["recall"] = 0.0
    totals["f1"] = 0.0
    totals["encoding_accuracy"] = 0.0
    return DiscoveryReport(report, [], totals)


def matched_signal_names(truth, result, truth_observations=None):
    """{truth signal name: recovered catalog signal name} for matches."""
    if truth_observations is None:
        truth_observations = result.observations
    out = {}
    for message in truth.messages:
        key = (message.channel, message.message_id)
        truth_stream = truth_observations.get(key)
        discovery = result.messages.get(key)
        if truth_stream is None or discovery is None:
            continue
        stats = truth_stream.stats()
        recovered = {
            signal.token.bit_set(): signal
            for signal in discovery.signals
            if signal.data_class != CONSTANT
        }
        for signal in message.signals:
            if signal.mux_value is not None or signal.section_bit is not None:
                continue
            observed = observed_boundary(signal.encoding, stats)
            hit = recovered.get(frozenset(observed)) if observed else None
            if hit is not None:
                out[signal.name] = signal_name(
                    message.channel, message.message_id, hit.first_bit
                )
    return out


def discoverable_signals(truth, truth_observations):
    """Names of unconditioned truth signals with a non-empty boundary."""
    out = []
    for message in truth.messages:
        key = (message.channel, message.message_id)
        stream = truth_observations.get(key)
        if stream is None:
            continue
        stats = stream.stats()
        for signal in message.signals:
            if signal.mux_value is not None or signal.section_bit is not None:
                continue
            if observed_boundary(signal.encoding, stats):
                out.append(signal.name)
    return out


def pipeline_coverage(truth, result, records, truth_observations=None):
    """Fraction of discoverable truth signals the synthesized catalog
    actually interprets events for, end to end.

    Runs the unchanged signal-extraction prefix (preselect + interpret)
    with the recovered catalog over *records* and checks, per
    discoverable truth signal, that its boundary-matched recovered
    signal produced at least one ``K_s`` row.
    """
    from repro.core.pipeline import PipelineConfig, PreprocessingPipeline
    from repro.engine.context import EngineContext
    from repro.protocols.frames import BYTE_RECORD_COLUMNS

    if truth_observations is None:
        truth_observations = result.observations
    names = matched_signal_names(truth, result, truth_observations)
    discoverable = discoverable_signals(truth, truth_observations)
    if not discoverable:
        return 1.0, {}
    context = EngineContext.serial()
    k_b = context.table_from_rows(list(BYTE_RECORD_COLUMNS), list(records))
    config = PipelineConfig(catalog=result.catalog, short_payload="skip")
    pipeline = PreprocessingPipeline(config)
    k_s = pipeline.extract_signals(k_b)
    seen = set(k_s.column_values("s_id"))
    covered = {
        truth_name: names.get(truth_name) in seen
        for truth_name in discoverable
    }
    coverage = sum(1 for hit in covered.values() if hit) / len(covered)
    return coverage, covered


#: Corruption knobs the discovery degradation sweep exercises.
DISCOVERY_KNOBS = ("bit_flips", "truncation")


def _knob_model(knob):
    from repro.vehicle.corruption import BitFlip, PayloadTruncation

    if knob == "bit_flips":
        return BitFlip(rate=0.02)
    if knob == "truncation":
        return PayloadTruncation(rate=0.3)
    raise ValueError("unknown discovery knob {!r}".format(knob))


def discovery_degradation(records, truth, knobs=None,
                          severities=(0.0, 0.5, 1.0), seed=0, config=None):
    """Sweep corruption severities and score discovery at each point.

    Returns ``{knob: [(severity, totals dict), ...]}`` with severities
    ascending. The clean trace's observations define the truth
    boundaries at every severity, so scores measure what corruption
    *destroys*, not what it redefines.
    """
    from repro.vehicle.corruption import corrupt

    records = list(records)
    clean_observations = collect_observations(records)
    out = {}
    for knob in (knobs if knobs is not None else DISCOVERY_KNOBS):
        model = _knob_model(knob)
        points = []
        for severity in sorted(severities):
            scaled = model.at_severity(severity)
            corrupted, _log = corrupt(records, [scaled], seed=seed)
            result = discover(records=corrupted, config=config)
            report = score_discovery(
                truth, result, truth_observations=clean_observations
            )
            points.append((severity, report.totals))
        out[knob] = points
    return out
