"""Boundary tokenizer: per-bit flip statistics -> signal tokens.

The core ACTT observation: within one signal, flip rate falls (roughly
halves, for counter-like streams) with each step up in bit significance,
because a bit flips only when everything below it wraps. In DBC bit
numbering, significance rises with in-byte position for *both* byte
orders -- Intel and Motorola differ only in which neighbouring byte
continues the run. The tokenizer therefore works in two layers:

1. **per-byte chunks** -- scan each byte's active bits upward and cut
   where the flip rate *rises* beyond tolerance (a new LSB is busier
   than the previous signal's MSB); inactive bits split runs for free;
2. **cross-byte chains** (the ByCAN-style byte refinement) -- a chunk
   touching its byte's top may continue into the next byte's bottom
   chunk (Intel: next byte is more significant), and a chunk touching
   its byte's bottom may continue into the next byte's top chunk
   (Motorola: next byte is less significant). Candidate links must keep
   the flip-rate profile monotone; when both byte orders are
   structurally possible the link with the more plausible cross-byte
   rate drop wins (ties go to Intel, the dominant convention).

Bits that never flip but are always set become *constant* tokens
(optional); never-set bits are padding and produce nothing. A token is
pure geometry -- :class:`Token` knows its bit positions in significance
order and can mint a :class:`~repro.protocols.signalcodec.SignalEncoding`
via :meth:`SignalEncoding.from_bit_positions`; signedness, data class
and scaling are the inference stage's job.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.discovery.observations import DiscoveryConfig
from repro.protocols.signalcodec import INTEL, MOTOROLA, SignalEncoding


@dataclass(frozen=True)
class Token:
    """One recovered signal boundary.

    ``positions`` are absolute payload bit positions in significance
    order (least significant first), exactly like
    :meth:`SignalEncoding.bit_positions`.
    """

    positions: tuple
    byte_order: str = INTEL
    constant: bool = False

    @property
    def first_bit(self):
        return min(self.positions)

    @property
    def bit_length(self):
        return len(self.positions)

    def bit_set(self):
        return frozenset(self.positions)

    def encoding(self, **kwargs):
        return SignalEncoding.from_bit_positions(
            self.positions, self.byte_order, **kwargs
        )


def tokenize(stats, config=None):
    """Cut one message's :class:`BitStats` into :class:`Token` s.

    Returns tokens sorted by lowest bit position. Messages with fewer
    samples than ``config.min_frames`` yield no tokens -- too little
    evidence to place a boundary.
    """
    if config is None:
        config = DiscoveryConfig()
    if stats.samples < config.min_frames or stats.num_bits == 0:
        return []
    rates = [stats.flip_rate(p) for p in range(stats.num_bits)]
    active = [
        stats.flips[p] > 0 and stats.pairs[p] >= config.min_bit_pairs
        for p in range(stats.num_bits)
    ]
    chunks_by_byte = [
        _byte_chunks(rates, active, byte_index, config)
        for byte_index in range(stats.num_bits // 8)
    ]
    tokens = _chain_chunks(chunks_by_byte, rates, config)
    if config.emit_constants:
        tokens.extend(_constant_tokens(stats, config))
    tokens.sort(key=lambda token: token.first_bit)
    return tokens


def _byte_chunks(rates, active, byte_index, config):
    """Maximal runs of active bits within one byte, cut on rate rises."""
    base = byte_index * 8
    chunks = []
    current = []
    for position in range(base, base + 8):
        if not active[position]:
            if current:
                chunks.append(current)
                current = []
            continue
        if current and _is_boundary(rates[current[-1]], rates[position],
                                    config):
            chunks.append(current)
            current = []
        current.append(position)
    if current:
        chunks.append(current)
    return chunks


def _rate_rises(previous_rate, next_rate, config):
    return next_rate > (
        previous_rate * (1.0 + config.flip_tolerance) + config.flip_epsilon
    )


def _is_boundary(previous_rate, next_rate, config):
    """Both boundary signatures: a rate rise *from a decayed tail*.

    A rise alone is not enough -- a sensor stepping by ~(2**k - 1) per
    frame flips bit k almost every frame while the k bits below it
    decrement, so bit k's rate jumps above its neighbour's mid-range
    rate without any signal ending there. A finished signal's MSB, by
    contrast, has decayed to near zero before the next LSB fires.
    """
    return next_rate > (
        previous_rate * (1.0 + config.flip_tolerance) + config.flip_epsilon
    ) and previous_rate <= config.cut_tail_rate


@dataclass
class _Chain:
    """A growing cross-byte token (significance-ordered positions)."""

    positions: list
    direction: str = None
    absorbed: bool = False
    links: int = 0


def _chain_chunks(chunks_by_byte, rates, config):
    """Link byte chunks across byte boundaries into signal chains."""
    chain_of = {}
    chains = []
    for byte_index, chunk_list in enumerate(chunks_by_byte):
        for chunk_index, chunk in enumerate(chunk_list):
            chain = _Chain(positions=list(chunk))
            chain_of[(byte_index, chunk_index)] = chain
            chains.append(chain)
    for byte_index in range(len(chunks_by_byte) - 1):
        left = chunks_by_byte[byte_index]
        right = chunks_by_byte[byte_index + 1]
        if not left or not right:
            continue
        intel_link = _intel_candidate(
            left, right, byte_index, chain_of, rates, config
        )
        moto_link = _moto_candidate(
            left, right, byte_index, chain_of, rates, config
        )
        if intel_link and moto_link and not (
            set(intel_link[:2]) & set(moto_link[:2])
        ):
            # Disjoint chunk pairs: both byte orders continue here
            # (e.g. an Intel run through the byte top and a Motorola
            # sawtooth through the byte bottom).
            _apply_link(chain_of, chains, *intel_link)
            _apply_link(chain_of, chains, *moto_link)
        elif intel_link and moto_link:
            # One chunk would serve both; keep the direction whose
            # cross-byte significance claim fits the rate profile best.
            intel_score = _link_score(intel_link, chunks_by_byte, rates)
            moto_score = _link_score(moto_link, chunks_by_byte, rates)
            if moto_score < intel_score:
                _apply_link(chain_of, chains, *moto_link)
            else:
                _apply_link(chain_of, chains, *intel_link)
        elif intel_link:
            _apply_link(chain_of, chains, *intel_link)
        elif moto_link:
            _apply_link(chain_of, chains, *moto_link)
    tokens = []
    for chain in chains:
        if chain.absorbed:
            continue
        byte_order = chain.direction if chain.direction else INTEL
        tokens.append(Token(tuple(chain.positions), byte_order))
    return tokens


def _intel_candidate(left, right, byte_index, chain_of, rates, config):
    """Link (left_key, right_key, direction) continuing an Intel run."""
    left_chunk, right_chunk = left[-1], right[0]
    if left_chunk[-1] % 8 != 7 or right_chunk[0] % 8 != 0:
        return None
    chain = chain_of[(byte_index, len(left) - 1)]
    if chain.direction not in (None, INTEL):
        return None
    # The next byte's bottom continues upward in significance: a
    # boundary signature (rise from a decayed tail) refuses the link.
    if _is_boundary(rates[left_chunk[-1]], rates[right_chunk[0]], config):
        return None
    return ((byte_index, len(left) - 1), (byte_index + 1, 0), INTEL)


def _moto_candidate(left, right, byte_index, chain_of, rates, config):
    """Link continuing a Motorola sawtooth (next byte less significant)."""
    left_chunk, right_chunk = left[0], right[-1]
    if left_chunk[0] % 8 != 0 or right_chunk[-1] % 8 != 7:
        return None
    chain = chain_of[(byte_index, 0)]
    if chain.direction not in (None, MOTOROLA):
        return None
    # The next byte's top sits just *below* the current LSB in
    # significance: a boundary signature there refuses the link.
    if _is_boundary(rates[right_chunk[-1]], rates[left_chunk[0]], config):
        return None
    return ((byte_index, 0), (byte_index + 1, len(right) - 1), MOTOROLA)


def _link_score(link, chunks_by_byte, rates):
    """How implausible a link's significance claim is (lower = better).

    A link claims its more-significant chunk flips no more than its
    less-significant one; the score is the mean-rate excess of the
    claimed more-significant chunk (Intel: the right chunk, Motorola:
    the left chunk).
    """
    left_key, right_key, direction = link
    left_chunk = chunks_by_byte[left_key[0]][left_key[1]]
    right_chunk = chunks_by_byte[right_key[0]][right_key[1]]
    if direction == INTEL:
        more, less = right_chunk, left_chunk
    else:
        more, less = left_chunk, right_chunk
    return _mean_rate(more, rates) - _mean_rate(less, rates)


def _mean_rate(chunk, rates):
    return sum(rates[p] for p in chunk) / len(chunk)


def _constant_tokens(stats, config):
    """Maximal runs of stuck-at-one bits (flag/padding words).

    Never-set bits are indistinguishable from padding and produce
    nothing; always-set runs are genuine constants worth recording so
    the synthesized database documents them. Single-run tokens are
    byte-order-agnostic; they are emitted as canonical Intel.
    """
    tokens = []
    current = []
    for position in range(stats.num_bits):
        stuck = (
            stats.covered[position] >= config.min_frames
            and stats.flips[position] == 0
            and stats.ones[position] == stats.covered[position]
        )
        if stuck:
            current.append(position)
            continue
        if current:
            tokens.append(Token(tuple(current), constant=True))
            current = []
    if current:
        tokens.append(Token(tuple(current), constant=True))
    return tokens


def _apply_link(chain_of, chains, left_key, right_key, direction):
    chain = chain_of[left_key]
    right_chain = chain_of[right_key]
    if right_chain is chain or right_chain.absorbed:
        return
    if direction == INTEL:
        chain.positions = chain.positions + right_chain.positions
    else:
        chain.positions = right_chain.positions + chain.positions
    chain.direction = direction
    chain.links += 1
    right_chain.absorbed = True
    chain_of[right_key] = chain
