"""Synthesis: discovered signals -> NetworkDatabase + RuleCatalog.

The output of discovery is deliberately *ordinary*: a
:class:`~repro.network.NetworkDatabase` whose messages carry synthetic
names (``DISC_<channel>_<id>`` / ``disc_<channel>_<id>_b<bit>``) and
whose catalog the existing preselect/interpret/reduce pipeline consumes
unchanged. Nothing downstream knows the tuples were reverse-engineered.

When a *partial* database is supplied, documented knowledge wins:

* a documented message keeps **all** its documented signals; recovered
  tokens overlapping any documented fixed signal are dropped (counted
  as ``merge.overlap_dropped``), non-overlapping recovered tokens fill
  the gaps;
* documented messages with a conditional :class:`ConditionalLayout` are
  kept entirely as-is -- section semantics cannot be safely merged with
  flat recovered geometry;
* documented messages absent from the trace survive wholesale;
* payload length and cycle time take the max/documented value so
  documented encodings always stay in bounds.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.discovery.inference import (
    CHECKSUM,
    CONSTANT,
    COUNTER,
    infer_signals,
)
from repro.discovery.observations import (
    DiscoveryConfig,
    DiscoveryError,
    collect_observations,
)
from repro.discovery.tokenizer import tokenize
from repro.network.database import (
    MessageDefinition,
    NetworkDatabase,
    NUMERIC,
    ORDINAL,
    SignalDefinition,
)
from repro.obs.metrics import MetricsRegistry
from repro.protocols.signalcodec import overlaps

_SANITIZE_RE = re.compile(r"\W+")

#: Inferred data class -> database data class. Counters are ordinal
#: (ordered raws, no physical unit); everything else is numeric.
_DATA_CLASS_MAP = {
    COUNTER: ORDINAL,
}


def _sanitize(channel):
    return _SANITIZE_RE.sub("_", str(channel)).strip("_").lower()


def signal_name(channel, message_id, first_bit):
    return "disc_{}_{:x}_b{}".format(
        _sanitize(channel), message_id, first_bit
    )


def message_name(channel, message_id):
    return "DISC_{}_{:X}".format(_sanitize(channel).upper(), message_id)


@dataclass(frozen=True)
class MessageDiscovery:
    """Everything discovery learned about one message stream."""

    channel: str
    message_id: int
    protocol: str
    frames: int
    payload_length: int
    cycle_time: object
    signals: tuple  # DiscoveredSignal, ...


@dataclass(frozen=True)
class DiscoveryResult:
    """Discovery output: per-message findings + pipeline-ready catalog."""

    observations: dict        # {(channel, id): MessageObservations}
    messages: dict            # {(channel, id): MessageDiscovery}
    database: object          # NetworkDatabase
    catalog: object           # RuleCatalog
    merge_stats: dict = field(default_factory=dict)
    metrics: object = None

    def message_keys(self):
        return tuple(self.messages)


def discover_message(observations, config=None):
    """Tokenize + infer one observation stream into a MessageDiscovery."""
    if config is None:
        config = DiscoveryConfig()
    tokens = tokenize(observations.stats(), config)
    signals = tuple(infer_signals(observations, tokens, config))
    return MessageDiscovery(
        channel=observations.channel,
        message_id=observations.message_id,
        protocol=observations.protocol,
        frames=len(observations),
        payload_length=observations.max_payload_length(),
        cycle_time=observations.cycle_time(),
        signals=signals,
    )


def discover(records=None, observations=None, partial=None, config=None,
             metrics=None):
    """Run the full discovery front end over a trace.

    Exactly one of *records* (an iterable of byte records) or
    *observations* (pre-grouped streams, e.g. from
    :func:`collect_observations_file`) must be given. *partial* is an
    optional documented :class:`NetworkDatabase` to merge with.
    """
    if (records is None) == (observations is None):
        raise DiscoveryError(
            "exactly one of records= or observations= is required"
        )
    if config is None:
        config = DiscoveryConfig()
    if metrics is None:
        metrics = MetricsRegistry()
    if observations is None:
        observations = collect_observations(records)
    messages = {}
    for key, stream in observations.items():
        discovery = discover_message(stream, config)
        messages[key] = discovery
        metrics.inc("discovery.frames", discovery.frames)
        metrics.inc("discovery.messages")
        for signal in discovery.signals:
            metrics.inc("discovery.tokens")
            metrics.inc("discovery.tokens." + signal.data_class)
            metrics.inc(
                "discovery.short_payload_skipped",
                signal.short_payload_skipped,
            )
            metrics.observe(
                "discovery.token_width_bits", signal.bit_length
            )
    database, merge_stats = synthesize_database(
        messages, partial=partial, config=config
    )
    catalog = database.translation_catalog()
    metrics.inc("discovery.synthesis.tuples", len(catalog))
    for name, value in merge_stats.items():
        metrics.inc("discovery.merge." + name, value)
    return DiscoveryResult(
        observations=observations,
        messages=messages,
        database=database,
        catalog=catalog,
        merge_stats=merge_stats,
        metrics=metrics,
    )


def synthesize_database(messages, partial=None, config=None):
    """Build a NetworkDatabase from MessageDiscovery findings.

    Returns ``(database, merge_stats)``. With *partial* given,
    documented signals win per the module docstring.
    """
    if config is None:
        config = DiscoveryConfig()
    documented = {}
    if partial is not None:
        documented = {
            (m.channel, m.message_id): m for m in partial.messages
        }
    stats = {
        "documented_messages": 0,
        "documented_only_messages": 0,
        "recovered_messages": 0,
        "documented_signals": 0,
        "recovered_signals": 0,
        "overlap_dropped": 0,
        "layout_locked": 0,
    }
    out = []
    seen = set()
    for key, discovery in messages.items():
        doc = documented.get(key)
        if doc is None:
            message = _recovered_message(discovery, config)
            if message is not None:
                stats["recovered_messages"] += 1
                stats["recovered_signals"] += len(message.signals)
                out.append(message)
        else:
            seen.add(key)
            stats["documented_messages"] += 1
            stats["documented_signals"] += len(doc.signals)
            out.append(_merged_message(doc, discovery, config, stats))
    for key, doc in documented.items():
        if key not in seen:
            stats["documented_only_messages"] += 1
            stats["documented_signals"] += len(doc.signals)
            out.append(doc)
    return NetworkDatabase(tuple(out)), stats


def _recovered_message(discovery, config):
    definitions = _signal_definitions(discovery, config)
    if not definitions and discovery.payload_length == 0:
        return None
    return MessageDefinition(
        name=message_name(discovery.channel, discovery.message_id),
        message_id=discovery.message_id,
        channel=discovery.channel,
        protocol=discovery.protocol,
        payload_length=discovery.payload_length,
        signals=tuple(definitions),
        cycle_time=discovery.cycle_time,
    )


def _merged_message(doc, discovery, config, stats):
    if doc.layout is not None:
        # Conditional sections: recovered flat geometry cannot be
        # reconciled with mask-gated sections -- keep the documented
        # message untouched.
        stats["layout_locked"] += 1
        return doc
    fixed = [
        s.encoding for s in doc.signals if s.section_bit is None
    ]
    added = []
    for signal in discovery.signals:
        if not _eligible(signal, config):
            continue
        encoding = signal.encoding()
        if any(overlaps(encoding, other) for other in fixed):
            stats["overlap_dropped"] += 1
            continue
        added.append(
            _definition(discovery, signal, encoding)
        )
        stats["recovered_signals"] += 1
    payload_length = max(doc.payload_length, discovery.payload_length)
    cycle_time = doc.cycle_time
    if cycle_time is None:
        cycle_time = discovery.cycle_time
    return MessageDefinition(
        name=doc.name,
        message_id=doc.message_id,
        channel=doc.channel,
        protocol=doc.protocol,
        payload_length=payload_length,
        signals=tuple(doc.signals) + tuple(added),
        cycle_time=cycle_time,
        layout=doc.layout,
        multiplexor=doc.multiplexor,
    )


def _eligible(signal, config):
    if signal.data_class == CONSTANT and not config.emit_constants:
        return False
    return True


def _signal_definitions(discovery, config):
    return [
        _definition(discovery, signal, signal.encoding())
        for signal in discovery.signals
        if _eligible(signal, config)
    ]


def _definition(discovery, signal, encoding):
    return SignalDefinition(
        name=signal_name(
            discovery.channel, discovery.message_id, signal.first_bit
        ),
        encoding=encoding,
        data_class=_DATA_CLASS_MAP.get(signal.data_class, NUMERIC),
        comment="discovered " + signal.data_class,
    )
