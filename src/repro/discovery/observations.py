"""Per-message payload observation streams for DBC-less discovery.

Discovery consumes the same raw byte records ``(t, l, b_id, m_id,
m_info)`` the pipeline's preselection stage does, but with no catalog to
preselect against: *every* message type is a candidate. This module
groups a trace into one :class:`MessageObservations` stream per
``(channel, message_id)`` and computes the per-bit statistics the
tokenizer cuts boundaries from:

* **flips** -- how often bit ``p`` differs between consecutive payloads
  of the same message (the ACTT/ByCAN signal: flip rate falls with bit
  significance, so a rate *increase* marks a new signal's LSB);
* **ones** / **covered** -- how often bit ``p`` is set vs how often a
  payload was long enough to contain it (stuck-at-one runs become
  constant tokens; truncated payloads simply cover fewer bits);
* **pairs** -- how many consecutive-payload comparisons covered bit
  ``p`` (the flip-rate denominator under variable payload lengths).

Collection is single-pass and integer-only: each payload folds into an
``int`` once and flip/one counts iterate set bits of sparse XOR masks.
For ``.ctrc`` columnar traces, :func:`collect_observations_file` scans
the time/id/channel columns directly and decodes one ``m_info`` cell per
message type -- the same column-scan contract preselection uses.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass


class DiscoveryError(ValueError):
    """Raised for invalid discovery configuration or input."""


#: Protocols a :class:`~repro.network.MessageDefinition` accepts; frames
#: announcing anything else are synthesized as CAN.
_KNOWN_PROTOCOLS = ("CAN", "LIN", "SOMEIP", "FLEXRAY")


@dataclass(frozen=True)
class DiscoveryConfig:
    """Knobs of the tokenizer and inference stages.

    ``flip_tolerance`` and ``flip_epsilon`` govern the boundary rule: a
    cut happens where the flip rate *rises* beyond ``previous * (1 +
    tolerance) + epsilon`` -- the relative term absorbs sampling noise
    on busy bits, the absolute term protects rarely-flipping high bits
    from Poisson jitter. ``cut_tail_rate`` adds the boundary's second
    requirement: the bit *below* the rise must have decayed into tail
    territory (a finished signal's MSB barely flips). A rise from a
    still-busy bit is arithmetic structure inside one signal -- e.g. a
    sensor stepping by ~(2**k - 1) per frame makes bit k flip like a
    fresh LSB while bits below it count *down* -- not a new signal.
    """

    min_frames: int = 8
    min_bit_pairs: int = 4
    flip_tolerance: float = 0.35
    flip_epsilon: float = 0.02
    cut_tail_rate: float = 0.12
    counter_fraction: float = 0.9
    checksum_min_width: int = 8
    checksum_min_flip_rate: float = 0.2
    checksum_mean_flip_rate: float = 0.35
    emit_constants: bool = True
    #: Optional {(channel, message_id, first_bit): (lo, hi)} physical
    #: value ranges to fit scale/offset against.
    range_hints: object = None

    def __post_init__(self):
        if self.min_frames < 2:
            raise DiscoveryError("min_frames must be >= 2")
        if self.min_bit_pairs < 1:
            raise DiscoveryError("min_bit_pairs must be >= 1")
        if self.flip_tolerance < 0 or self.flip_epsilon < 0:
            raise DiscoveryError(
                "flip_tolerance and flip_epsilon must be >= 0"
            )
        if not 0.0 <= self.cut_tail_rate <= 1.0:
            raise DiscoveryError("cut_tail_rate must be in [0, 1]")
        if not 0.0 < self.counter_fraction <= 1.0:
            raise DiscoveryError("counter_fraction must be in (0, 1]")


class BitStats:
    """Per-bit flip/one/coverage counts of one message's payload stream."""

    __slots__ = ("num_bits", "flips", "ones", "covered", "pairs", "samples")

    def __init__(self, num_bits):
        self.num_bits = num_bits
        self.flips = [0] * num_bits
        self.ones = [0] * num_bits
        self.covered = [0] * num_bits
        self.pairs = [0] * num_bits
        self.samples = 0

    def flip_rate(self, position):
        pairs = self.pairs[position]
        return self.flips[position] / pairs if pairs else 0.0


def bit_statistics(payloads):
    """Single-pass :class:`BitStats` over a payload sequence."""
    num_bits = max((len(p) for p in payloads), default=0) * 8
    stats = BitStats(num_bits)
    length_counts = Counter()
    pair_counts = Counter()
    ones = stats.ones
    flips = stats.flips
    previous = None
    previous_bits = 0
    for payload in payloads:
        bits = len(payload) * 8
        length_counts[bits] += 1
        x = int.from_bytes(payload, "little")
        y = x
        while y:
            low = y & -y
            ones[low.bit_length() - 1] += 1
            y ^= low
        if previous is not None:
            common = min(bits, previous_bits)
            pair_counts[common] += 1
            if common:
                diff = (x ^ previous) & ((1 << common) - 1)
                while diff:
                    low = diff & -diff
                    flips[low.bit_length() - 1] += 1
                    diff ^= low
        previous, previous_bits = x, bits
        stats.samples += 1
    # covered[p] = payloads with more than p bits; pairs[p] likewise for
    # consecutive-payload comparisons (suffix sums of the histograms).
    _accumulate_coverage(stats.covered, length_counts)
    _accumulate_coverage(stats.pairs, pair_counts)
    return stats


def _accumulate_coverage(out, histogram):
    running = 0
    boundaries = sorted(histogram, reverse=True)
    position = len(out)
    for bits in boundaries:
        while position > bits:
            position -= 1
            out[position] = running
        running += histogram[bits]
    while position > 0:
        position -= 1
        out[position] = running


class MessageObservations:
    """All observed payloads of one ``(channel, message_id)`` stream."""

    __slots__ = (
        "channel", "message_id", "protocol", "timestamps", "payloads",
        "_stats",
    )

    def __init__(self, channel, message_id, protocol="CAN"):
        self.channel = channel
        self.message_id = message_id
        self.protocol = protocol if protocol in _KNOWN_PROTOCOLS else "CAN"
        self.timestamps = []
        self.payloads = []
        self._stats = None

    @property
    def key(self):
        return (self.channel, self.message_id)

    def append(self, timestamp, payload):
        self.timestamps.append(timestamp)
        self.payloads.append(bytes(payload))
        self._stats = None

    def __len__(self):
        return len(self.payloads)

    def max_payload_length(self):
        return max((len(p) for p in self.payloads), default=0)

    def stats(self):
        if self._stats is None:
            self._stats = bit_statistics(self.payloads)
        return self._stats

    def cycle_time(self):
        """Median inter-arrival time, or None below three frames."""
        if len(self.timestamps) < 3:
            return None
        deltas = sorted(
            b - a for a, b in zip(self.timestamps, self.timestamps[1:])
        )
        median = deltas[len(deltas) // 2]
        return median if median > 0 else None


def _protocol_of(m_info):
    for key, value in m_info or ():
        if key == "protocol":
            return value
    return "CAN"


def collect_observations(records):
    """Group byte records into per-message observation streams.

    Returns ``{(channel, message_id): MessageObservations}`` in first-
    appearance order. Records are ``(t, l, b_id, m_id, m_info)`` tuples
    as produced by every trace codec and corruption model.
    """
    streams = {}
    for t, payload, b_id, m_id, m_info in records:
        key = (b_id, m_id)
        obs = streams.get(key)
        if obs is None:
            obs = MessageObservations(b_id, m_id, _protocol_of(m_info))
            streams[key] = obs
        obs.append(t, payload)
    return streams


def collect_observations_file(path):
    """Column-scan a ``.ctrc`` columnar trace into observation streams.

    Grouping reads only the time / message-id / channel-index columns;
    payload cells materialize straight into the per-message streams and
    exactly one ``m_info`` cell is decoded per message type (to learn
    its protocol) -- the rest of the info plane is never touched.
    """
    from repro.tracefile.colbin import ColumnarTraceReader

    reader = ColumnarTraceReader(path)
    times = reader.times()
    m_ids = reader.message_ids()
    channel_indices = reader.channel_indices()
    channels = reader.channels
    payloads = reader.payload_column()
    info = reader.info_column()
    streams = {}
    for index in range(len(reader)):
        key = (channels[channel_indices[index]], m_ids[index])
        obs = streams.get(key)
        if obs is None:
            obs = MessageObservations(
                key[0], key[1], _protocol_of(info[index])
            )
            streams[key] = obs
        obs.append(times[index], payloads[index])
    return streams
