"""Compiled-kernel throughput: generated loops vs closure interpreter.

The interpreted narrow path pays one Python call frame per bound
expression node per row; the compiled path (repro.engine.codegen) runs
the whole fused Filter -> Project chain as one generated loop. This
benchmark measures both on the SYN vehicle:

* ``fused_filter_project`` -- an expression-heavy filter+project chain
  over replicated SYN byte records, the shape preselection and
  reduction hot loops take. This is the headline gate: compiled must
  sustain at least 2x the interpreted rows/s.
* ``extract_signals`` -- the real K_b -> K_s prefix of Algorithm 1
  (preselection + interpretation), reported for context; its
  interpretation stage is dominated by opaque user callables that
  codegen can only call, so its speedup is structurally smaller.

Results are printed and written to ``BENCH_5.json`` (repo root,
machine-readable) so the speedup is recorded alongside the code.
"""

import json
import os
import time

import pytest

from benchmarks.conftest import DURATIONS, print_table
from repro.core import PipelineConfig, PreprocessingPipeline
from repro.engine import EngineContext, col, lit
from repro.engine.executor import SerialExecutor

pytestmark = pytest.mark.slow

#: The acceptance gate: compiled rows/s over interpreted rows/s on the
#: fused filter+project chain.
SPEEDUP_GATE = 2.0

_BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_5.json")


def _best_seconds(table, attempts=3):
    """Best-of-N wall time of collecting *table* (plans re-execute)."""
    best = None
    rows = None
    for _attempt in range(attempts):
        start = time.perf_counter()
        rows = table.collect()
        seconds = time.perf_counter() - start
        best = seconds if best is None else min(best, seconds)
    return best, rows


def _fused_chain(ctx, base_rows):
    """An expression-heavy fused Filter -> Project chain over K_b shape."""
    t = ctx.table_from_rows(["t", "m", "b", "name"], base_rows)
    return (
        t.filter((col("m") > 1) & (col("b") < 60) & (col("t") >= lit(1.0)))
        .with_column("u", col("b") * lit(0.5) + col("m"))
        .with_column("v", col("u") - col("t"))
        .filter(col("v") > lit(0.0))
        .select("name", "u", "v")
    )


def _measure(build, input_rows, compile_kernels):
    with SerialExecutor(
        default_parallelism=4, compile_kernels=compile_kernels
    ) as executor:
        ctx = EngineContext(executor)
        seconds, rows = _best_seconds(build(ctx))
        if compile_kernels:
            assert executor.metrics.kernels_compiled > 0
        else:
            assert executor.metrics.kernels_compiled == 0
        return {
            "seconds": seconds,
            "rows_per_s": input_rows / seconds,
            "output_rows": len(rows),
            "rows": rows,
        }


def _syn_records(syn_bundle, target_rows=200_000):
    """SYN byte records, replicated to a stable measurement size."""
    with SerialExecutor() as executor:
        k_b = syn_bundle.record_table(
            EngineContext(executor), DURATIONS["SYN"]
        )
        base = k_b.collect()
    records = []
    while len(records) < target_rows:
        records.extend(base)
    return records[:target_rows]


def test_compiled_kernels_double_fused_chain_throughput(syn_bundle):
    records = _syn_records(syn_bundle)
    chain_rows = [
        (float(t), m_id % 8, payload[0] if payload else 0, "m%d" % m_id)
        for (t, payload, _b_id, m_id, _m_info) in records
    ]

    interpreted = _measure(
        lambda ctx: _fused_chain(ctx, chain_rows), len(chain_rows), False
    )
    compiled = _measure(
        lambda ctx: _fused_chain(ctx, chain_rows), len(chain_rows), True
    )
    assert compiled["rows"] == interpreted["rows"]
    chain_speedup = compiled["rows_per_s"] / interpreted["rows_per_s"]

    # The real Algorithm-1 prefix, for context (not gated: its
    # interpretation maps are opaque user callables).
    catalog = syn_bundle.catalog()
    pipeline = PreprocessingPipeline(PipelineConfig(catalog=catalog))

    def extract(ctx):
        k_b = syn_bundle.record_table(ctx, DURATIONS["SYN"])
        return pipeline.extract_signals(k_b, cache=False)

    trace_rows = len(syn_bundle.byte_records(DURATIONS["SYN"]))
    extract_interpreted = _measure(extract, trace_rows, False)
    extract_compiled = _measure(extract, trace_rows, True)
    assert extract_compiled["rows"] == extract_interpreted["rows"]
    extract_speedup = (
        extract_compiled["rows_per_s"] / extract_interpreted["rows_per_s"]
    )

    print_table(
        "Compiled-kernel throughput (SYN)",
        ["pipeline", "input rows", "interpreted rows/s", "compiled rows/s",
         "speedup"],
        [
            ["fused_filter_project", len(chain_rows),
             "%.0f" % interpreted["rows_per_s"],
             "%.0f" % compiled["rows_per_s"], "%.2fx" % chain_speedup],
            ["extract_signals", trace_rows,
             "%.0f" % extract_interpreted["rows_per_s"],
             "%.0f" % extract_compiled["rows_per_s"],
             "%.2fx" % extract_speedup],
        ],
    )

    payload = {
        "benchmark": "kernel_throughput",
        "dataset": "SYN",
        "speedup_gate": SPEEDUP_GATE,
        "pipelines": {
            "fused_filter_project": {
                "input_rows": len(chain_rows),
                "output_rows": compiled["output_rows"],
                "interpreted_rows_per_s": round(interpreted["rows_per_s"]),
                "compiled_rows_per_s": round(compiled["rows_per_s"]),
                "interpreted_seconds": round(interpreted["seconds"], 4),
                "compiled_seconds": round(compiled["seconds"], 4),
                "speedup": round(chain_speedup, 2),
            },
            "extract_signals": {
                "input_rows": trace_rows,
                "output_rows": extract_compiled["output_rows"],
                "interpreted_rows_per_s": round(
                    extract_interpreted["rows_per_s"]
                ),
                "compiled_rows_per_s": round(
                    extract_compiled["rows_per_s"]
                ),
                "interpreted_seconds": round(
                    extract_interpreted["seconds"], 4
                ),
                "compiled_seconds": round(extract_compiled["seconds"], 4),
                "speedup": round(extract_speedup, 2),
            },
        },
    }
    with open(_BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert chain_speedup >= SPEEDUP_GATE, (
        "compiled fused chain is only %.2fx interpreted "
        "(gate %.1fx)" % (chain_speedup, SPEEDUP_GATE)
    )
