"""Sec. 3.2 memory-efficiency claim: store K_b raw, interpret on demand.

"To keep memory efficiency high ... we store traces in raw format K_b
which is more efficient than translating all K_b to K_s as, e.g., per
CAN message 8 bytes could contain 8 signals which would result in a K_s
of 8 times the size of K_b."

This bench measures the serialized size of the raw trace vs the fully
interpreted signal table for each data set, asserting that the raw form
is smaller and that the blow-up grows with the signals-per-message
density (LIG, at ~5 signals/message, blows up more than SYN at ~1.5).
"""

import pickle

import pytest

from benchmarks.conftest import DURATIONS, print_table
from repro.core import interpret, preselect
from repro.engine import EngineContext


def serialized_size(table):
    """Bytes of the table's rows under the store's wire format."""
    return sum(
        len(pickle.dumps(part, protocol=pickle.HIGHEST_PROTOCOL))
        for part in table.collect_partitions()
    )


def measure(bundle, duration):
    ctx = EngineContext.serial()
    k_b = bundle.record_table(ctx, duration).cache()
    catalog = bundle.catalog()
    k_s = interpret(preselect(k_b, catalog), catalog).cache()
    raw = serialized_size(k_b)
    interpreted = serialized_size(k_s)
    return {
        "rows_raw": k_b.count(),
        "rows_interpreted": k_s.count(),
        "bytes_raw": raw,
        "bytes_interpreted": interpreted,
        "blowup": interpreted / raw,
    }


@pytest.fixture(scope="module")
def measurements(bundles):
    return {
        name: measure(bundle, DURATIONS[name])
        for name, bundle in bundles.items()
    }


def test_storage_efficiency_report(benchmark, measurements):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        "Sec. 3.2 -- raw K_b vs fully interpreted K_s storage",
        [
            "set", "raw rows", "K_s rows", "raw bytes",
            "K_s bytes", "K_s / K_b size",
        ],
        [
            (
                name,
                m["rows_raw"],
                m["rows_interpreted"],
                m["bytes_raw"],
                m["bytes_interpreted"],
                round(m["blowup"], 2),
            )
            for name, m in sorted(measurements.items())
        ],
    )
    assert len(measurements) == 3


def test_raw_storage_wins_at_high_density(benchmark, measurements):
    """The paper's example assumes dense CAN packing (8 signals per
    8-byte message). LIG, our densest set (~5 signals/message), must
    show the claimed blow-up; sparse sets need not (SYN at ~1.5
    signals/message is the honest counterpoint -- per-row header
    overhead there outweighs row multiplication)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert measurements["LIG"]["blowup"] > 1.5


def test_blowup_grows_with_signal_density(benchmark, measurements):
    """The blow-up factor must be ordered by signals-per-message
    density: SYN (~1.5) < STA (~3.5) < LIG (~5)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert (
        measurements["SYN"]["blowup"]
        < measurements["STA"]["blowup"]
        < measurements["LIG"]["blowup"]
    )


def test_row_multiplication_matches_density(benchmark, measurements, bundles):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name, m in measurements.items():
        density = m["rows_interpreted"] / m["rows_raw"]
        # The row blow-up IS the signals-per-message density.
        assert density == pytest.approx(
            bundles[name].database.statistics()["avg_signals_per_message"],
            rel=0.5,
        )
