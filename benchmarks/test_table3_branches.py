"""Table 3: classification + type-dependent processing throughput.

Verifies at volume that sequences engineered for each row of Table 3 are
classified into the right branch and measures the per-branch
homogenization throughput (outliers -> smoothing -> SWAB -> SAX for α;
translation + gradient for β; relabelling for γ).
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core import classify
from repro.core.branches import process_branch
from repro.engine import Schema

SCHEMA = Schema.of("t", "v", "s_id", "b_id")
N = 5_000


def make_sequence(row):
    """Synthesize (times, values) for one Table 3 configuration."""
    rng = np.random.default_rng(42)
    if row == "numeric_high":
        times = [0.01 * i for i in range(N)]
        values = list(
            np.sin(np.linspace(0, 60, N)) * 50 + 100 + rng.normal(0, 0.5, N)
        )
    elif row == "numeric_low":
        times = [5.0 * i for i in range(N // 10)]
        values = list((np.arange(N // 10) % 17).astype(float))
    elif row == "string_ordinal":
        times = [0.5 * i for i in range(N // 5)]
        values = (["low", "medium", "high", "medium"] * N)[: N // 5]
    elif row == "string_binary":
        times = [0.5 * i for i in range(N // 5)]
        values = (["ON", "OFF"] * N)[: N // 5]
    elif row == "string_nominal":
        times = [0.5 * i for i in range(N // 5)]
        values = (["driving", "parking", "standby"] * N)[: N // 5]
    else:  # numeric_binary
        times = [0.5 * i for i in range(N // 5)]
        values = ([0, 1] * N)[: N // 5]
    return times, values


EXPECTED = {
    "numeric_high": ("numeric", "alpha"),
    "numeric_low": ("ordinal", "beta"),
    "string_ordinal": ("ordinal", "beta"),
    "string_binary": ("binary", "gamma"),
    "string_nominal": ("nominal", "gamma"),
    "numeric_binary": ("binary", "gamma"),
}


@pytest.mark.parametrize("row", sorted(EXPECTED))
def test_table3_branch(benchmark, row):
    times, values = make_sequence(row)
    rows = [(t, v, "s", "FC") for t, v in zip(times, values)]

    def classify_and_process():
        classification = classify(times, values)
        out = process_branch(rows, SCHEMA, classification)
        return classification, out

    classification, out = benchmark.pedantic(
        classify_and_process, rounds=1, iterations=1
    )
    expected_type, expected_branch = EXPECTED[row]

    print_table(
        "Table 3 row '{}'".format(row),
        ["criterion", "value"],
        [
            ("z_type", classification.criteria.z_type),
            ("z_rate", classification.criteria.z_rate),
            ("z_num", classification.criteria.z_num),
            ("z_val", classification.criteria.z_val),
            ("data type", classification.data_type),
            ("branch", classification.branch),
            ("input rows", len(rows)),
            ("output rows", len(out)),
        ],
    )
    assert classification.data_type == expected_type
    assert classification.branch == expected_branch
    assert out
    # Homogeneous layout regardless of branch.
    assert all(len(r) == 6 for r in out)
