"""Ablations of the framework's design choices (DESIGN.md index).

1. **Early preselection** (Sec. 3: "Interpretation cost is kept low as
   relevant messages are filtered prior to interpretation" and
   "interpretation is expensive ... thus, early reduction is required"):
   interpret-everything-then-filter vs preselect-then-interpret.
2. **Gateway deduplication** (Sec. 4.1, line 9): processing all routed
   copies vs one representative channel per signal type.
3. **Cluster parallelism** (Sec. 5.1): the same extraction under 1, 5,
   10 and 20 simulated workers.
"""

import pytest

from benchmarks.conftest import CLUSTER_WORKERS, print_table
from repro.core import PipelineConfig, PreprocessingPipeline
from repro.engine import EngineContext
from repro.protocols.frames import BYTE_RECORD_COLUMNS


@pytest.fixture(scope="module")
def syn_trace_records(syn_bundle):
    return syn_bundle.byte_records(60.0)


def cluster_ctx(records, stage_latency=0.0):
    ctx = EngineContext.simulated_cluster(
        num_workers=CLUSTER_WORKERS, stage_latency=stage_latency
    )
    table = ctx.table_from_rows(list(BYTE_RECORD_COLUMNS), records).cache()
    return ctx, table


class TestAblationPreselection:
    def test_preselection_saves_interpretation_work(
        self, benchmark, syn_bundle, syn_trace_records
    ):
        few = list(syn_bundle.beta_ids + syn_bundle.gamma_ids)  # slow signals
        few_catalog = syn_bundle.database.translation_catalog(few)
        full_catalog = syn_bundle.database.translation_catalog()

        def with_preselection():
            ctx, k_b = cluster_ctx(syn_trace_records)
            pipe = PreprocessingPipeline(PipelineConfig(catalog=few_catalog))
            ctx.executor.reset_clock()
            rows = pipe.extract_signals(k_b, cache=False).count()
            return ctx.executor.simulated_seconds, rows

        def without_preselection():
            """Interpret every documented signal, filter afterwards."""
            from repro.core.interpretation import interpret
            from repro.engine.expressions import col

            ctx, k_b = cluster_ctx(syn_trace_records)
            ctx.executor.reset_clock()
            k_s = interpret(k_b, full_catalog, context=ctx)
            wanted = frozenset(few)
            rows = k_s.filter(col("s_id").is_in(wanted)).count()
            return ctx.executor.simulated_seconds, rows

        (pre_s, pre_rows), (post_s, post_rows) = benchmark.pedantic(
            lambda: (with_preselection(), without_preselection()),
            rounds=1,
            iterations=1,
        )
        print_table(
            "Ablation: early preselection (extracting {} slow signals)".format(
                len(few)
            ),
            ["variant", "cluster seconds", "rows out"],
            [
                ("preselect, then interpret", round(pre_s, 4), pre_rows),
                ("interpret all, then filter", round(post_s, 4), post_rows),
            ],
        )
        assert pre_rows == post_rows  # lossless optimization
        assert pre_s < post_s  # and it must actually pay off


class TestAblationGatewayDedup:
    def test_dedup_reduces_processed_rows(self, benchmark, syn_bundle, syn_trace_records):
        catalog = syn_bundle.catalog()
        constraints = syn_bundle.default_constraints()

        def run(dedup):
            ctx, k_b = cluster_ctx(syn_trace_records)
            config = PipelineConfig(
                catalog=catalog, constraints=constraints, dedup_channels=dedup
            )
            result = PreprocessingPipeline(config).run(k_b)
            processed = sum(
                o.rows_before_reduction for o in result.outcomes.values()
            )
            branch_seconds = result.timings["branch"] + result.timings["reduce"]
            return processed, branch_seconds

        (with_rows, with_s), (without_rows, without_s) = benchmark.pedantic(
            lambda: (run(True), run(False)), rounds=1, iterations=1
        )
        print_table(
            "Ablation: gateway deduplication e() (SYN, routed alpha signals)",
            ["variant", "rows processed", "reduce+branch seconds"],
            [
                ("dedup on (one channel/type)", with_rows, round(with_s, 3)),
                ("dedup off (all copies)", without_rows, round(without_s, 3)),
            ],
        )
        # Routed copies exist, so disabling dedup processes strictly more.
        assert without_rows > with_rows

    def test_dedup_is_lossless_for_downstream(self, benchmark, syn_bundle):
        """The representative channel carries the same value sequence, so
        the homogenized output values do not change."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        ctx = EngineContext.serial()
        k_b = syn_bundle.record_table(ctx, 20.0)
        s_id = None
        config = PipelineConfig(
            catalog=syn_bundle.catalog(),
            constraints=syn_bundle.default_constraints(),
            dedup_channels=True,
        )
        result = PreprocessingPipeline(config).run(k_b)
        for candidate, outcome in result.outcomes.items():
            if outcome.groups and outcome.groups[0].corresponding:
                s_id = candidate
                break
        assert s_id is not None, "expected at least one routed signal"
        dedup_values = [
            (r[3], r[4], r[5])
            for r in sorted(result.outcomes[s_id].result_rows)
        ]
        config_off = PipelineConfig(
            catalog=syn_bundle.catalog().select([s_id]),
            constraints=syn_bundle.default_constraints([s_id]),
            dedup_channels=False,
        )
        result_off = PreprocessingPipeline(config_off).run(k_b)
        all_values = [
            (r[3], r[4], r[5])
            for r in sorted(result_off.outcomes[s_id].result_rows)
        ]
        # Every homogenized element of the deduplicated run appears in
        # the duplicated run (which simply has the copies on top).
        for item in set(dedup_values):
            assert item in set(all_values)


class TestAblationInterpretationStrategy:
    def test_join_vs_fused_interpretation(self, benchmark, syn_bundle, syn_trace_records):
        """Two physical formulations of lines 4-6: the paper's relational
        join vs a broadcast flat-map. Same output; the bench reports both
        costs (the join pays for row replication, the flat-map for the
        per-row dict lookup)."""
        from repro.core.interpretation import interpret
        from repro.core.preselection import preselect

        catalog = syn_bundle.catalog()

        def measure(strategy):
            ctx, k_b = cluster_ctx(syn_trace_records)
            k_pre = preselect(k_b, catalog).cache()
            best = None
            rows = None
            for _attempt in range(3):
                ctx.executor.reset_clock()
                rows = interpret(k_pre, catalog, strategy=strategy).count()
                elapsed = ctx.executor.simulated_seconds
                best = elapsed if best is None else min(best, elapsed)
            return best, rows

        (join_s, join_rows), (fused_s, fused_rows) = benchmark.pedantic(
            lambda: (measure("join"), measure("fused")),
            rounds=1,
            iterations=1,
        )
        print_table(
            "Ablation: interpretation strategy (SYN, all signals)",
            ["strategy", "cluster seconds", "rows out"],
            [
                ("relational join (paper)", round(join_s, 4), join_rows),
                ("broadcast flat-map", round(fused_s, 4), fused_rows),
            ],
        )
        assert join_rows == fused_rows
        # Both formulations stay within a small factor of each other.
        assert 0.2 < fused_s / join_s < 5.0


class TestAblationRateThreshold:
    def test_threshold_moves_alpha_beta_boundary(self, benchmark, syn_bundle):
        """Eq. 2's threshold T "is determined by domain knowledge": this
        ablation sweeps T and shows the α/β boundary move -- fast
        numerics drop out of α as T rises past their change rate."""
        from repro.core import ClassifierConfig, PipelineConfig, PreprocessingPipeline
        from repro.core.branches import BranchConfig

        ctx = EngineContext.serial()
        k_b = syn_bundle.record_table(ctx, 40.0).cache()

        def alpha_count(threshold):
            config = PipelineConfig(
                catalog=syn_bundle.catalog(),
                constraints=syn_bundle.default_constraints(),
                branch_config=BranchConfig(
                    classifier=ClassifierConfig(rate_threshold=threshold)
                ),
            )
            result = PreprocessingPipeline(config).run(k_b)
            return sum(
                1
                for _dt, branch in result.classification_summary().values()
                if branch == "alpha"
            )

        thresholds = (0.1, 1.0, 30.0, 1000.0)
        counts = benchmark.pedantic(
            lambda: [alpha_count(t) for t in thresholds],
            rounds=1,
            iterations=1,
        )
        print_table(
            "Ablation: rate threshold T (SYN, alpha signal count)",
            ["T [1/s]", "# alpha"],
            list(zip(thresholds, counts)),
        )
        # Monotone: raising T can only shrink alpha.
        assert counts == sorted(counts, reverse=True)
        # The paper's setting (T around 1/s) yields the Table 5 split.
        assert counts[1] == syn_bundle.spec.alpha_types
        # Extreme T pushes every numeric out of alpha.
        assert counts[-1] == 0


class TestAblationParallelism:
    def test_scaling_with_worker_count(self, benchmark, syn_bundle, syn_trace_records):
        catalog = syn_bundle.catalog()

        def measure(workers):
            ctx = EngineContext.simulated_cluster(
                num_workers=workers, stage_latency=0.0
            )
            k_b = ctx.table_from_rows(
                list(BYTE_RECORD_COLUMNS), syn_trace_records,
                num_partitions=max(workers * 2, 8),
            ).cache()
            pipe = PreprocessingPipeline(PipelineConfig(catalog=catalog))
            best = None
            for _attempt in range(3):
                ctx.executor.reset_clock()
                pipe.extract_signals(k_b, cache=False).count()
                elapsed = ctx.executor.simulated_seconds
                best = elapsed if best is None else min(best, elapsed)
            return best

        series = benchmark.pedantic(
            lambda: [(w, measure(w)) for w in (1, 5, 10, 20)],
            rounds=1,
            iterations=1,
        )
        print_table(
            "Ablation: simulated cluster size (SYN extraction)",
            ["workers", "cluster seconds", "speedup vs 1"],
            [
                (w, round(t, 4), round(series[0][1] / t, 2))
                for w, t in series
            ],
        )
        lookup = dict(series)
        # More workers help substantially up to the partition count ...
        assert lookup[10] < 0.5 * lookup[1]
        # ... and never hurt.
        assert lookup[20] <= lookup[1]
