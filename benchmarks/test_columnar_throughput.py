"""Columnar batch-kernel throughput: column buffers vs row tuples.

BENCH_5 showed the row-at-a-time ceiling: compiled row kernels reach
only ~2x interpreted on the real ``extract_signals`` path because every
partition is still a list of Python tuples and the interpretation
callables re-derive signal geometry per row. The columnar layer changes
both: fused Filter/Project chains run over column buffers and the
``u_1``/``u_2`` applies take the whole-column ``batch_call`` path with
per-rule compiled extractors/evaluators (see ``repro.core.rules`` and
``repro.engine.codegen``).

Measured on the SYN vehicle:

* ``extract_signals`` -- the K_b -> K_s prefix of Algorithm 1 under
  three executors: interpreted rows, compiled row kernels, columnar
  batch kernels. This is the headline gate: columnar must sustain at
  least 3x the interpreted rows/s.
* ``preselection_scan`` -- preselection from disk: the mmap-able
  columnar tracefile (`.ctrc`, scanning only the (t, b_id, m_id)
  columns and decoding no payloads) vs decoding the record-major
  binlog and filtering in the engine. Reported for context.

Results are printed and written to ``BENCH_6.json`` (repo root).

The wide-stage case below extends the measurement across stage
boundaries: with the columnar exchange on, the interpretation join and
the per-signal split run over columnar partitions end to end
(preselect -> broadcast join -> u_1/u_2 -> split_by_key), gated at 2x
the row-compiled path and written to ``BENCH_10.json``.
"""

import json
import os
import time
from collections import Counter

import pytest

from benchmarks.conftest import DURATIONS, print_table
from repro.core import PipelineConfig, PreprocessingPipeline, preselect
from repro.core.interpretation import interpret
from repro.core.preselection import preselect_file
from repro.core.splitting import split_signal_types
from repro.engine import EngineContext
from repro.engine.executor import SerialExecutor
from repro.tracefile import binlog, colbin

pytestmark = pytest.mark.slow

#: The acceptance gate: columnar batch rows/s over interpreted rows/s
#: on the real extract_signals path.
SPEEDUP_GATE = 3.0

#: The wide-stage gate: columnar exchange end-to-end rows/s over the
#: row-compiled path on preselect -> interpretation join -> split.
WIDE_SPEEDUP_GATE = 2.0

_BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_6.json")
_BENCH_WIDE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_10.json"
)


def _best_seconds(run, attempts=3):
    """Best-of-N wall time of *run* (a zero-argument callable)."""
    best = None
    rows = None
    for _attempt in range(attempts):
        start = time.perf_counter()
        rows = run()
        seconds = time.perf_counter() - start
        best = seconds if best is None else min(best, seconds)
    return best, rows


def _row_multiset(rows):
    """Order- and hash-stable multiset key for mixed-type K_s rows."""
    return Counter((repr(row), tuple(type(c).__name__ for c in row))
                   for row in rows)


def _measure_extract(syn_bundle, records, compile_kernels, columnar):
    catalog = syn_bundle.catalog()
    pipeline = PreprocessingPipeline(PipelineConfig(catalog=catalog))
    with SerialExecutor(
        default_parallelism=4,
        compile_kernels=compile_kernels,
        columnar_kernels=columnar,
    ) as executor:
        ctx = EngineContext(executor)
        k_b = ctx.table_from_rows(
            ["t", "l", "b_id", "m_id", "m_info"], records
        )
        seconds, rows = _best_seconds(
            lambda: pipeline.extract_signals(k_b, cache=False).collect()
        )
        if columnar:
            assert executor.metrics.columnar_tasks > 0
        elif compile_kernels:
            assert executor.metrics.columnar_tasks == 0
            assert executor.metrics.kernels_compiled > 0
        return {
            "seconds": seconds,
            "rows_per_s": len(records) / seconds,
            "output_rows": len(rows),
            "rows": rows,
        }


def test_columnar_extract_signals_triples_interpreted(
    syn_bundle, tmp_path
):
    records = syn_bundle.byte_records(DURATIONS["SYN"])

    interpreted = _measure_extract(syn_bundle, records, False, False)
    row_compiled = _measure_extract(syn_bundle, records, True, False)
    columnar = _measure_extract(syn_bundle, records, True, True)
    assert _row_multiset(row_compiled["rows"]) == \
        _row_multiset(interpreted["rows"])
    assert _row_multiset(columnar["rows"]) == \
        _row_multiset(interpreted["rows"])
    row_speedup = row_compiled["rows_per_s"] / interpreted["rows_per_s"]
    columnar_speedup = columnar["rows_per_s"] / interpreted["rows_per_s"]

    # Preselection from disk: columnar (t, b_id, m_id)-only mmap scan
    # vs decoding the full record-major binlog into engine rows.
    catalog = syn_bundle.catalog()
    columnar_path = tmp_path / "syn.ctrc"
    record_path = tmp_path / "syn.btrc"
    colbin.dump_records(records, columnar_path)
    binlog.dump_records(records, record_path)

    with SerialExecutor(default_parallelism=4) as executor:
        ctx = EngineContext(executor)

        def scan_columnar():
            return preselect_file(ctx, columnar_path, catalog).collect()

        def scan_rows():
            loaded = binlog.load_records(record_path)
            table = ctx.table_from_rows(
                ["t", "l", "b_id", "m_id", "m_info"], loaded
            )
            return preselect(table, catalog).collect()

        scan_col_seconds, scan_col_rows = _best_seconds(scan_columnar)
        scan_row_seconds, scan_row_rows = _best_seconds(scan_rows)
    assert sorted(scan_col_rows) == sorted(scan_row_rows)
    scan_speedup = scan_row_seconds / scan_col_seconds

    print_table(
        "Columnar batch-kernel throughput (SYN)",
        ["pipeline", "input rows", "rows/s", "vs interpreted"],
        [
            ["extract_signals interpreted", len(records),
             "%.0f" % interpreted["rows_per_s"], "1.00x"],
            ["extract_signals row-compiled", len(records),
             "%.0f" % row_compiled["rows_per_s"],
             "%.2fx" % row_speedup],
            ["extract_signals columnar", len(records),
             "%.0f" % columnar["rows_per_s"],
             "%.2fx" % columnar_speedup],
            ["preselection_scan binlog", len(records),
             "%.0f" % (len(records) / scan_row_seconds), "1.00x"],
            ["preselection_scan colbin", len(records),
             "%.0f" % (len(records) / scan_col_seconds),
             "%.2fx" % scan_speedup],
        ],
    )

    payload = {
        "benchmark": "columnar_throughput",
        "dataset": "SYN",
        "speedup_gate": SPEEDUP_GATE,
        "pipelines": {
            "extract_signals": {
                "input_rows": len(records),
                "output_rows": columnar["output_rows"],
                "interpreted_rows_per_s": round(interpreted["rows_per_s"]),
                "row_compiled_rows_per_s": round(
                    row_compiled["rows_per_s"]
                ),
                "columnar_rows_per_s": round(columnar["rows_per_s"]),
                "interpreted_seconds": round(interpreted["seconds"], 4),
                "row_compiled_seconds": round(row_compiled["seconds"], 4),
                "columnar_seconds": round(columnar["seconds"], 4),
                "row_compiled_speedup": round(row_speedup, 2),
                "columnar_speedup": round(columnar_speedup, 2),
            },
            "preselection_scan": {
                "input_rows": len(records),
                "output_rows": len(scan_col_rows),
                "binlog_rows_per_s": round(
                    len(records) / scan_row_seconds
                ),
                "colbin_rows_per_s": round(
                    len(records) / scan_col_seconds
                ),
                "binlog_seconds": round(scan_row_seconds, 4),
                "colbin_seconds": round(scan_col_seconds, 4),
                "speedup": round(scan_speedup, 2),
            },
        },
    }
    with open(_BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert columnar_speedup >= SPEEDUP_GATE, (
        "columnar extract_signals is only %.2fx interpreted "
        "(gate %.1fx)" % (columnar_speedup, SPEEDUP_GATE)
    )


def _run_wide_pipeline(syn_bundle, records, columnar):
    """One end-to-end run: preselect -> join-interpret -> per-signal split.

    Builds a fresh executor per call: split routings are cached per
    (plan, key) on the executor, so reusing one would let later
    attempts skip the split stage entirely.
    """
    catalog = syn_bundle.catalog()
    with SerialExecutor(
        default_parallelism=4,
        compile_kernels=True,
        columnar_kernels=columnar,
    ) as executor:
        ctx = EngineContext(executor)
        k_b = ctx.table_from_rows(
            ["t", "l", "b_id", "m_id", "m_info"], records
        )
        start = time.perf_counter()
        k_pre = preselect(k_b, catalog)
        k_s = interpret(k_pre, catalog, strategy="join")
        groups = split_signal_types(k_s)
        rows = {
            s_id: table.collect() for s_id, table in sorted(groups.items())
        }
        seconds = time.perf_counter() - start
        metrics = executor.metrics
        if columnar:
            # The interpretation join and the split routing actually
            # ran over columnar partitions -- no silent row fallback.
            assert metrics.columnar_join_tasks > 0
            assert metrics.columnar_shuffle_tasks > 0
            assert metrics.columnar_exchange_bytes > 0
        else:
            assert metrics.columnar_join_tasks == 0
            assert metrics.columnar_shuffle_tasks == 0
        return seconds, rows


def _measure_wide(syn_bundle, records, columnar, attempts=3):
    best = None
    rows = None
    for _attempt in range(attempts):
        seconds, rows = _run_wide_pipeline(syn_bundle, records, columnar)
        best = seconds if best is None else min(best, seconds)
    return {
        "seconds": best,
        "rows_per_s": len(records) / best,
        "groups": len(rows),
        "output_rows": sum(len(v) for v in rows.values()),
        "rows": rows,
    }


def test_columnar_wide_stages_double_row_compiled(syn_bundle):
    records = syn_bundle.byte_records(DURATIONS["SYN"])

    row_compiled = _measure_wide(syn_bundle, records, columnar=False)
    wide = _measure_wide(syn_bundle, records, columnar=True)

    # Group-for-group identity, not just totals: the columnar exchange
    # must route every signal instance to the same per-signal table.
    assert sorted(wide["rows"]) == sorted(row_compiled["rows"])
    for s_id in wide["rows"]:
        assert _row_multiset(wide["rows"][s_id]) == _row_multiset(
            row_compiled["rows"][s_id]
        )
    speedup = wide["rows_per_s"] / row_compiled["rows_per_s"]

    print_table(
        "Columnar wide stages: interpret join + per-signal split (SYN)",
        ["pipeline", "input rows", "groups", "rows/s", "vs row-compiled"],
        [
            ["row-compiled exchange", len(records), row_compiled["groups"],
             "%.0f" % row_compiled["rows_per_s"], "1.00x"],
            ["columnar exchange", len(records), wide["groups"],
             "%.0f" % wide["rows_per_s"], "%.2fx" % speedup],
        ],
    )

    payload = {
        "benchmark": "columnar_wide_stages",
        "dataset": "SYN",
        "speedup_gate": WIDE_SPEEDUP_GATE,
        "pipelines": {
            "interpret_split": {
                "input_rows": len(records),
                "output_rows": wide["output_rows"],
                "groups": wide["groups"],
                "row_compiled_rows_per_s": round(
                    row_compiled["rows_per_s"]
                ),
                "columnar_wide_rows_per_s": round(wide["rows_per_s"]),
                "row_compiled_seconds": round(row_compiled["seconds"], 4),
                "columnar_wide_seconds": round(wide["seconds"], 4),
                "speedup": round(speedup, 2),
            },
        },
    }
    with open(_BENCH_WIDE_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert speedup >= WIDE_SPEEDUP_GATE, (
        "columnar wide stages are only %.2fx row-compiled "
        "(gate %.1fx)" % (speedup, WIDE_SPEEDUP_GATE)
    )
