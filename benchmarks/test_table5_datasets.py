"""Table 5: statistics of the three data sets.

Regenerates the paper's data-set statistics table from the synthetic
SYN / LIG / STA vehicles: signal-type counts per processing branch
(verified against the pipeline's own classification, not just the
generator's intent), example counts and the signals-per-message average.

Paper values (20 h of driving):

    =====  =====  ===  ===  ===  ==========  ====
     set   types   α    β    γ    examples    ∅/msg
    =====  =====  ===  ===  ===  ==========  ====
    SYN      13     6    4    3  13,197,983  1.47
    LIG     180    27   71   82  12,306,327  5.11
    STA      78     6    1   71   4,807,891  3.66
    =====  =====  ===  ===  ===  ==========  ====

Example counts scale with the simulated duration; branch counts and the
per-message average must reproduce exactly / closely.
"""

import pytest

from benchmarks.conftest import DURATIONS, print_table
from repro.core import PipelineConfig, PreprocessingPipeline
from repro.engine import EngineContext

PAPER = {
    "SYN": {"types": 13, "alpha": 6, "beta": 4, "gamma": 3, "avg": 1.47},
    "LIG": {"types": 180, "alpha": 27, "beta": 71, "gamma": 82, "avg": 5.11},
    "STA": {"types": 78, "alpha": 6, "beta": 1, "gamma": 71, "avg": 3.66},
}


def classify_bundle(bundle, duration):
    ctx = EngineContext.serial()
    k_b = bundle.record_table(ctx, duration)
    config = PipelineConfig(
        catalog=bundle.catalog(), constraints=bundle.default_constraints()
    )
    result = PreprocessingPipeline(config).run(k_b)
    counts = {"alpha": 0, "beta": 0, "gamma": 0}
    for _dt, branch in result.classification_summary().values():
        counts[branch] += 1
    stats = bundle.statistics(ctx, duration)
    return counts, stats


@pytest.mark.parametrize("name", ["SYN", "LIG", "STA"])
def test_table5_dataset(benchmark, bundles, name):
    bundle = bundles[name]
    duration = DURATIONS[name]
    counts, stats = benchmark.pedantic(
        classify_bundle, args=(bundle, duration), rounds=1, iterations=1
    )
    paper = PAPER[name]

    print_table(
        "Table 5 ({}) -- measured vs paper".format(name),
        ["metric", "measured", "paper"],
        [
            ("# signal types", stats["signal_types"], paper["types"]),
            ("# signal types - alpha", counts["alpha"], paper["alpha"]),
            ("# signal types - beta", counts["beta"], paper["beta"]),
            ("# signal types - gamma", counts["gamma"], paper["gamma"]),
            ("# examples", stats["examples"],
             "{:,} (20 h)".format(PAPER_EXAMPLES[name])),
            ("avg signal types per message",
             round(stats["avg_signals_per_message"], 2), paper["avg"]),
        ],
    )

    # Branch counts must match Table 5 exactly: the pipeline classifies
    # the generated signals into the paper's distribution.
    assert stats["signal_types"] == paper["types"]
    assert counts["alpha"] == paper["alpha"]
    assert counts["beta"] == paper["beta"]
    assert counts["gamma"] == paper["gamma"]
    # The signals-per-message average approximates the paper's within 25%.
    assert stats["avg_signals_per_message"] == pytest.approx(
        paper["avg"], rel=0.25
    )
    assert stats["examples"] > 1000


PAPER_EXAMPLES = {
    "SYN": 13_197_983,
    "LIG": 12_306_327,
    "STA": 4_807_891,
}
