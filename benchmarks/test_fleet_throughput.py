"""Fleet sweep throughput: traces/second against worker count.

The paper's motivation is scale -- "500 cars produce 1.5 TB per day" --
so the fleet orchestrator's job is to keep per-trace pipeline runs
flowing through a bounded worker pool. This bench prepares one sweep of
simulated journeys and executes it with a growing number of workers,
printing the traces/second and rows/second gauges from each run's
``repro.fleet/1`` report. Asserted shape: every sweep completes all
jobs, throughput is positive, and the aggregated output is
byte-identical regardless of worker count (parallelism must never
change results).
"""

from __future__ import annotations

import hashlib
import shutil

import pytest

from benchmarks.conftest import print_table
from repro import fleet

WORKER_COUNTS = (1, 2, 4)
NUM_TRACES = 6
DURATION = 3.0


def _artifact_digest(run_dir):
    """Digest of the deterministic resume surface (output + summary)."""
    digest = hashlib.sha256()
    output = run_dir / "output"
    for path in sorted(output.rglob("*")):
        if path.is_file():
            digest.update(path.relative_to(output).as_posix().encode())
            digest.update(path.read_bytes())
    digest.update((run_dir / fleet.SUMMARY_FILE).read_bytes())
    return digest.hexdigest()


@pytest.mark.slow
def test_fleet_throughput_by_worker_count(tmp_path):
    template = tmp_path / "template"
    fleet.prepare_run(
        template, dataset="SYN", num_traces=NUM_TRACES, duration=DURATION
    )

    rows = []
    digests = set()
    for workers in WORKER_COUNTS:
        run_dir = tmp_path / "run-w{}".format(workers)
        shutil.copytree(template, run_dir)
        result = fleet.run(run_dir, workers=workers)
        assert not result.failed
        assert len(result.executed) == NUM_TRACES
        gauges = result.report.to_dict()["gauges"]
        traces_per_s = gauges["fleet.traces_per_second"]
        rows_per_s = gauges["fleet.rows_per_second"]
        wall = gauges["fleet.wall_seconds"]
        assert traces_per_s > 0
        digests.add(_artifact_digest(run_dir))
        rows.append(
            (
                workers,
                NUM_TRACES,
                "{:.2f}".format(wall),
                "{:.2f}".format(traces_per_s),
                "{:.0f}".format(rows_per_s),
            )
        )

    assert len(digests) == 1, "worker count changed the aggregated output"
    print_table(
        "Fleet sweep throughput ({} traces, {:.0f}s journeys)".format(
            NUM_TRACES, DURATION
        ),
        ("workers", "traces", "wall s", "traces/s", "rows/s"),
        rows,
    )
