"""Table 6: signal extraction times, proposed vs in-house tool.

The paper extracts a fixed signal set from growing numbers of journeys:

    ========  ==========  =========  ========  ========  ========
    journeys  trace rows  extracted  #signals  proposed  in-house
    ========  ==========  =========  ========  ========  ========
       1        0.481e9    12.75e6       9       9.58 m    41.66 m
       1        0.481e9    79.47e6      89     168.05 m    41.66 m
       7        4.286e9    94.01e6       9      62.00 m   372.88 m
       7        4.286e9   586.12e6      89     183.25 m   372.88 m
      12        5.901e9   133.62e6       9      87.62 m   504.27 m
      12        5.901e9   833.07e6      89     269.65 m   504.27 m
    ========  ==========  =========  ========  ========  ========

Measured protocol, scaled to this reproduction (3 journeys of the SYN
vehicle; "few" = 3 of 13 signals, "all" = 13 signals):

* proposed = preselection + interpretation + writing the result tables
  to the store, on the measured-makespan cluster executor;
* in-house  = sequential ingest (interpretation of every known signal on
  ingest) of the same journeys.

Asserted shape (the paper's findings):

1. in-house time is independent of how many signals are extracted;
2. in-house time scales linearly with the number of journeys;
3. proposed time grows with the number of extracted signals;
4. for few signals over several journeys the proposed approach wins;
5. the proposed advantage shrinks (or flips) when all signals are
   extracted -- the Table 6 crossover.
"""

import tempfile
import time

import pytest

from benchmarks.conftest import CLUSTER_WORKERS, print_table
from repro.baseline import InHouseTool
from repro.core import PipelineConfig, PreprocessingPipeline
from repro.datasets import SYN_SPEC
from repro.engine import EngineContext, TableStore
from repro.protocols.frames import BYTE_RECORD_COLUMNS


def proposed_extraction(journeys, database, signal_ids, attempts=3):
    """Proposed pipeline: returns (cluster seconds, extracted rows).

    Best of *attempts* runs -- the sub-100 ms measurements at this scale
    jitter with scheduler noise.
    """
    ctx = EngineContext.simulated_cluster(num_workers=CLUSTER_WORKERS)
    catalog = database.translation_catalog(signal_ids)
    pipeline = PreprocessingPipeline(PipelineConfig(catalog=catalog))
    tables = [
        ctx.table_from_rows(list(BYTE_RECORD_COLUMNS), j).cache()
        for j in journeys
    ]
    best = None
    extracted = 0
    for _attempt in range(attempts):
        with tempfile.TemporaryDirectory() as tmp:
            store = TableStore(tmp)
            ctx.executor.reset_clock()
            start = time.perf_counter()
            extracted = 0
            for index, k_b in enumerate(tables):
                k_s = pipeline.extract_signals(k_b, cache=False)
                manifest = store.write("j{:02d}".format(index), k_s)
                extracted += manifest["num_rows"]
            wall = time.perf_counter() - start
            # Cluster tasks are modelled by the makespan clock;
            # everything else (dominated by writing the result tables)
            # is driver-side and charged at full wall time, as the paper
            # does ("interpretation followed by writing the results to
            # the database").
            driver_share = max(wall - ctx.executor.serial_task_seconds, 0.0)
            seconds = ctx.executor.simulated_seconds + driver_share
            best = seconds if best is None else min(best, seconds)
    return best, extracted


def inhouse_extraction(journeys, database, signal_ids, attempts=3):
    """Baseline: returns (seconds, extracted rows). Ingest dominates."""
    best = None
    count = 0
    for _attempt in range(attempts):
        tool = InHouseTool(database)
        start = time.perf_counter()
        tool.ingest_journeys(journeys)
        extracted = tool.extract(signal_ids)
        seconds = time.perf_counter() - start
        count = sum(len(v) for v in extracted.values())
        best = seconds if best is None else min(best, seconds)
    return best, count


@pytest.fixture(scope="module")
def measured(journeys_syn):
    from repro.datasets import build_dataset

    bundle = build_dataset(SYN_SPEC)
    database = bundle.database
    few = list(bundle.alpha_ids[:3])
    all_signals = list(bundle.signal_ids)
    rows = []
    for journey_count in (1, 3):
        journeys = journeys_syn[:journey_count]
        trace_rows = sum(len(j) for j in journeys)
        for label, signal_ids in (("few", few), ("all", all_signals)):
            proposed_s, extracted = proposed_extraction(
                journeys, database, signal_ids
            )
            inhouse_s, _n = inhouse_extraction(journeys, database, signal_ids)
            rows.append(
                {
                    "journeys": journey_count,
                    "trace_rows": trace_rows,
                    "signals": label,
                    "num_signals": len(signal_ids),
                    "extracted": extracted,
                    "proposed": proposed_s,
                    "inhouse": inhouse_s,
                }
            )
    return rows


def test_table6_report(benchmark, measured):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        "Table 6 -- extraction time, proposed ({} simulated workers) vs "
        "in-house (sequential)".format(CLUSTER_WORKERS),
        [
            "journeys", "trace rows", "extracted rows", "# signals",
            "proposed [s]", "in-house [s]", "speedup",
        ],
        [
            (
                r["journeys"],
                r["trace_rows"],
                r["extracted"],
                r["num_signals"],
                round(r["proposed"], 3),
                round(r["inhouse"], 3),
                round(r["inhouse"] / r["proposed"], 2),
            )
            for r in measured
        ],
    )
    assert len(measured) == 4


def _cell(measured, journeys, signals):
    return next(
        r
        for r in measured
        if r["journeys"] == journeys and r["signals"] == signals
    )


class TestTable6Shape:
    """Each test notes a finding; the trivial benchmark call keeps them
    runnable under --benchmark-only."""

    def test_inhouse_independent_of_signal_count(self, benchmark, measured):
        """Finding 1: ingest interprets everything regardless."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        for journeys in (1, 3):
            few = _cell(measured, journeys, "few")["inhouse"]
            all_s = _cell(measured, journeys, "all")["inhouse"]
            assert all_s == pytest.approx(few, rel=0.35)

    def test_inhouse_linear_in_journeys(self, benchmark, measured):
        """Finding 2: 3x the journeys ~ 3x the ingest time."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        one = _cell(measured, 1, "few")["inhouse"]
        three = _cell(measured, 3, "few")["inhouse"]
        assert three / one == pytest.approx(3.0, rel=0.5)

    def test_proposed_grows_with_signal_count(self, benchmark, measured):
        """Finding 3: more extracted rows, more interpretation work."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        for journeys in (1, 3):
            few = _cell(measured, journeys, "few")
            all_s = _cell(measured, journeys, "all")
            assert all_s["extracted"] > few["extracted"]
        # Time comparison on the multi-journey cells, where the signal
        # grows well above measurement jitter.
        few = _cell(measured, 3, "few")
        all_s = _cell(measured, 3, "all")
        assert all_s["proposed"] > few["proposed"]

    def test_proposed_wins_for_few_signals_many_journeys(self, benchmark, measured):
        """Finding 4: the paper's headline 5.7x cell (9 signals,
        12 journeys); here 3 of 13 signals over 3 journeys."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        cell = _cell(measured, 3, "few")
        speedup = cell["inhouse"] / cell["proposed"]
        assert speedup > 1.5

    def test_crossover_direction(self, benchmark, measured):
        """Finding 5: extracting every signal erodes the advantage --
        the speedup for 'all' must be smaller than for 'few'."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        few = _cell(measured, 3, "few")
        all_s = _cell(measured, 3, "all")
        speedup_few = few["inhouse"] / few["proposed"]
        speedup_all = all_s["inhouse"] / all_s["proposed"]
        assert speedup_all < speedup_few
