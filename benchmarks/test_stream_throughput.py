"""Streaming ingest throughput by session count.

Replays several SYN journeys through :class:`StreamIngestService` and
measures sustained ingest rate (frames/s) and window sealing rate
(sealed windows/s) as the number of concurrent vehicle sessions grows,
plus the checkpoint commit latency distribution.

The hard gate is the durability contract the whole subsystem exists
for: a service killed mid-stream and resumed from its committed
checkpoints must finalize to byte-identical ``R_out`` rows as an
uninterrupted run. A throughput number for a stream that loses or
double-counts frames would be meaningless, so the gate runs first.

Results are printed and written to ``BENCH_8.json`` (repo root).
"""

import asyncio
import json
import os

import pytest

from benchmarks.conftest import print_table
from repro.core import PipelineConfig
from repro.datasets import SYN_SPEC, build_dataset
from repro.engine import EngineContext
from repro.obs import MetricsRegistry, stopwatch
from repro.stream import ReplaySource, StreamConfig, StreamIngestService

pytestmark = pytest.mark.slow

_BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_8.json")

DURATION = 20.0
SESSION_COUNTS = (1, 2, 4, 8)
STREAM = StreamConfig(window_seconds=1.0, grace_seconds=0.5,
                      checkpoint_every=500)


def _vehicle(journey):
    bundle = build_dataset(SYN_SPEC, seed_offset=journey)
    records = bundle.byte_records(DURATION)
    config = PipelineConfig(
        catalog=bundle.catalog(),
        constraints=bundle.default_constraints(),
    )
    return records, config


@pytest.fixture(scope="module")
def vehicles():
    return [_vehicle(j) for j in range(max(SESSION_COUNTS))]


def _serve(run_dir, vehicles, metrics=None, max_frames=None):
    ctx = EngineContext.serial(default_parallelism=3)
    service = StreamIngestService(run_dir, STREAM, metrics=metrics)
    for index, (records, config) in enumerate(vehicles):
        service.add_vehicle(
            "veh{}".format(index), ReplaySource(records), config, ctx
        )
    result = asyncio.run(service.serve(max_frames=max_frames))
    return service, result


def _final_rows(service):
    return {
        vehicle_id: sorted(res.r_out.collect(), key=repr)
        for vehicle_id, res in service.finalize_all().items()
    }


def test_stream_throughput(vehicles, tmp_path):
    # -- gate: kill-and-resume byte identity ----------------------------
    clean_service, clean_result = _serve(tmp_path / "clean", vehicles[:2])
    assert not clean_result.killed
    baseline = _final_rows(clean_service)

    kill_at = sum(len(records) for records, _ in vehicles[:2]) // 2
    killed_service, killed_result = _serve(
        tmp_path / "killed", vehicles[:2], max_frames=kill_at
    )
    assert killed_result.killed
    resumed_service, resumed_result = _serve(
        tmp_path / "killed", vehicles[:2]
    )
    assert not resumed_result.killed
    assert _final_rows(resumed_service) == baseline, \
        "kill/resume diverged from the uninterrupted run"

    # -- measured region: serve() by session count -----------------------
    rows = []
    points = []
    for count in SESSION_COUNTS:
        metrics = MetricsRegistry()
        ctx = EngineContext.serial(default_parallelism=3)
        service = StreamIngestService(
            tmp_path / "bench-{}".format(count), STREAM, metrics=metrics
        )
        for index in range(count):
            records, config = vehicles[index]
            service.add_vehicle(
                "veh{}".format(index), ReplaySource(records), config, ctx
            )
        with stopwatch() as watch:
            result = asyncio.run(service.serve())
        assert not result.killed
        counters = metrics.counters()
        frames = counters["stream.frames_received"]
        windows = counters["stream.windows_sealed"]
        checkpoint_hist = metrics.histogram(
            "stream.checkpoint.seconds"
        ).summary()
        point = {
            "sessions": count,
            "frames": frames,
            "windows_sealed": windows,
            "seconds": watch.seconds,
            "frames_per_second": frames / watch.seconds,
            "windows_per_second": windows / watch.seconds,
            "checkpoints": counters["stream.checkpoints"],
            "checkpoint_seconds": checkpoint_hist,
            "late_dropped": counters.get("stream.late_dropped", 0),
        }
        points.append(point)
        rows.append([
            count,
            frames,
            windows,
            "%.2f" % watch.seconds,
            "%.0f" % point["frames_per_second"],
            "%.1f" % point["windows_per_second"],
            point["checkpoints"],
            "%.4f" % (checkpoint_hist.get("p95") or 0.0),
        ])
        # A paced replay of a clean journey must not drop anything.
        assert point["late_dropped"] == 0

    print_table(
        "Streaming ingest throughput (SYN, {}s journeys)".format(DURATION),
        ["sessions", "frames", "windows", "seconds", "frames/s",
         "windows/s", "ckpts", "ckpt p95 s"],
        rows,
    )

    payload = {
        "benchmark": "stream_throughput",
        "dataset": "SYN",
        "duration_seconds": DURATION,
        "stream_config": {
            "window_seconds": STREAM.window_seconds,
            "grace_seconds": STREAM.grace_seconds,
            "queue_capacity": STREAM.queue_capacity,
            "checkpoint_every": STREAM.checkpoint_every,
        },
        "kill_resume_byte_identical": True,
        "points": points,
    }
    with open(_BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Sanity: every session's work actually happened.
    for point, count in zip(points, SESSION_COUNTS):
        expected = sum(len(records) for records, _ in vehicles[:count])
        assert point["frames"] == expected
