"""Benchmark trend gate: every committed BENCH artifact must hold its gate.

Each slow-marked benchmark writes a ``BENCH_<n>.json`` artifact at the
repo root recording what it measured *and* the gate it asserted
(speedup floors, byte-identity flags, accuracy floors). Those artifacts
are committed, so a perf or correctness regression that slips past a
stale artifact -- a rerun that silently produced worse numbers, a
hand-edited gate, a benchmark dropped from CI -- would otherwise go
unnoticed until someone reran the whole slow suite.

This module re-checks every committed artifact against its gate rules
without rerunning anything: load each ``BENCH_*.json``, apply the rules
registered for its ``benchmark`` name, and fail on the first file whose
gated metric no longer clears its recorded gate. Unknown benchmark
names are reported but not failed (new benchmarks register rules here
when they grow a gate).

Run directly (``python -m benchmarks.bench_trend``) or via the
slow-marked wrapper in ``benchmarks/test_bench_trend.py``.
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass

#: Repo root: BENCH artifacts live next to ROADMAP.md.
DEFAULT_ROOT = os.path.join(os.path.dirname(__file__), "..")


@dataclass(frozen=True)
class Check:
    """One gated metric read from one artifact."""

    path: str  # artifact file name
    metric: str  # dotted path of the gated metric
    value: object
    gate: object
    ok: bool

    def describe(self):
        state = "ok" if self.ok else "REGRESSED"
        return "{}: {} = {!r} (gate {!r}) {}".format(
            self.path, self.metric, self.value, self.gate, state
        )


def _floor(path, metric, value, gate):
    return Check(path, metric, value, gate,
                 value is not None and gate is not None and value >= gate)


def _flag(path, metric, value):
    return Check(path, metric, value, True, value is True)


def _dig(payload, dotted):
    value = payload
    for part in dotted.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value


def _check_kernel_throughput(path, payload):
    gate = payload.get("speedup_gate")
    return [
        _floor(path, "pipelines.{}.speedup".format(name),
               _dig(pipe, "speedup"), gate)
        for name, pipe in sorted(payload.get("pipelines", {}).items())
    ]


def _check_columnar_throughput(path, payload):
    return [
        _floor(path, "pipelines.extract_signals.columnar_speedup",
               _dig(payload, "pipelines.extract_signals.columnar_speedup"),
               payload.get("speedup_gate")),
    ]


def _check_columnar_wide(path, payload):
    return [
        _floor(path, "pipelines.interpret_split.speedup",
               _dig(payload, "pipelines.interpret_split.speedup"),
               payload.get("speedup_gate")),
    ]


def _check_degradation(path, payload):
    # Severity 0.0 is the lossless control: the degraded pipeline must
    # reproduce the clean run byte for byte.
    checks = []
    for curve in payload.get("curves", []):
        if curve.get("severity") == 0.0:
            checks.append(
                _flag(path, "curves[severity=0.0].byte_identical",
                      curve.get("byte_identical"))
            )
    if not checks:
        checks.append(
            _flag(path, "curves[severity=0.0].byte_identical", None)
        )
    return checks


def _check_stream_throughput(path, payload):
    return [
        _flag(path, "kill_resume_byte_identical",
              payload.get("kill_resume_byte_identical")),
    ]


def _check_discovery_accuracy(path, payload):
    return [
        _floor(path, "micro.f1", _dig(payload, "micro.f1"),
               payload.get("f1_gate")),
    ]


#: benchmark name (the artifact's ``benchmark`` field) -> rule.
RULES = {
    "kernel_throughput": _check_kernel_throughput,
    "columnar_throughput": _check_columnar_throughput,
    "columnar_wide_stages": _check_columnar_wide,
    "degradation": _check_degradation,
    "stream_throughput": _check_stream_throughput,
    "discovery_accuracy": _check_discovery_accuracy,
}


def check_artifacts(root=DEFAULT_ROOT):
    """Check every ``BENCH_*.json`` under *root*.

    Returns ``(checks, unknown)``: all gated-metric checks (failed ones
    have ``ok=False``), plus the file names whose ``benchmark`` field
    has no registered rule.
    """
    checks = []
    unknown = []
    for path in sorted(glob.glob(os.path.join(root, "BENCH_*.json"))):
        name = os.path.basename(path)
        with open(path) as handle:
            payload = json.load(handle)
        rule = RULES.get(payload.get("benchmark"))
        if rule is None:
            unknown.append(name)
            continue
        checks.extend(rule(name, payload))
    return checks, unknown


def regressions(root=DEFAULT_ROOT):
    """The failing checks only."""
    checks, _unknown = check_artifacts(root)
    return [c for c in checks if not c.ok]


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(
        description="re-check committed BENCH_*.json artifacts "
                    "against their gates"
    )
    parser.add_argument("--root", default=DEFAULT_ROOT,
                        help="directory holding BENCH_*.json")
    args = parser.parse_args(argv)
    checks, unknown = check_artifacts(args.root)
    for check in checks:
        print(check.describe())
    for name in unknown:
        print("{}: no gate rules registered (skipped)".format(name))
    failed = [c for c in checks if not c.ok]
    if failed:
        print("{} gated metric(s) regressed".format(len(failed)))
        return 1
    print("{} gated metric(s) hold across {} artifact(s)".format(
        len(checks), len(set(c.path for c in checks))
    ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
