"""Gate the committed BENCH artifacts: no recorded metric may regress.

Runs with the slow suite so every benchmark session ends by re-checking
*all* committed ``BENCH_*.json`` artifacts -- including the ones this
session did not rerun -- against the gates they recorded.
"""

import json

import pytest

from benchmarks.bench_trend import (
    DEFAULT_ROOT,
    RULES,
    check_artifacts,
    main,
    regressions,
)

pytestmark = pytest.mark.slow


def test_committed_artifacts_hold_their_gates():
    checks, unknown = check_artifacts()
    assert checks, "no BENCH_*.json artifacts found at the repo root"
    assert unknown == [], (
        "artifacts without gate rules (register them in "
        "benchmarks/bench_trend.py): {}".format(unknown)
    )
    failed = [c.describe() for c in checks if not c.ok]
    assert failed == []


def test_every_committed_benchmark_name_has_a_rule():
    import glob
    import os

    names = set()
    for path in glob.glob(os.path.join(DEFAULT_ROOT, "BENCH_*.json")):
        with open(path) as handle:
            names.add(json.load(handle).get("benchmark"))
    assert names <= set(RULES)


def test_wide_stage_artifact_is_gated():
    checks, _unknown = check_artifacts()
    metrics = {(c.path, c.metric) for c in checks}
    assert ("BENCH_10.json", "pipelines.interpret_split.speedup") in metrics


def test_cli_exits_zero_on_clean_artifacts(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "gated metric(s) hold" in out


def test_regression_detected_in_doctored_artifact(tmp_path, capsys):
    (tmp_path / "BENCH_10.json").write_text(json.dumps({
        "benchmark": "columnar_wide_stages",
        "speedup_gate": 2.0,
        "pipelines": {"interpret_split": {"speedup": 1.4}},
    }))
    bad = regressions(str(tmp_path))
    assert len(bad) == 1
    assert bad[0].metric == "pipelines.interpret_split.speedup"
    assert main(["--root", str(tmp_path)]) == 1
    assert "REGRESSED" in capsys.readouterr().out
