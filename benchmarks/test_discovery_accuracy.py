"""Discovery accuracy and throughput on the SYN fleet.

Runs the DBC-less discovery front end over several distinct SYN
journeys and scores recovered boundaries against the ground-truth
database (observed-boundary P/R/F1 per journey, micro-averaged across
the fleet) plus throughput in frames and synthesized translation
tuples per second.

The hard gate mirrors the acceptance criterion: micro-averaged
boundary F1 on clean traces must be at least 0.9. Results are printed
and written to ``BENCH_9.json`` (repo root).
"""

import json
import os
import time

import pytest

from benchmarks.conftest import print_table
from repro.discovery import discover, score_discovery

pytestmark = pytest.mark.slow

_BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_9.json")

F1_GATE = 0.9


@pytest.fixture(scope="module")
def journey_runs(journeys_syn, syn_bundle):
    truth = syn_bundle.database
    runs = []
    for index, records in enumerate(journeys_syn):
        records = list(records)
        start = time.perf_counter()
        result = discover(records=records)
        seconds = time.perf_counter() - start
        report = score_discovery(truth, result)
        runs.append({
            "journey": index,
            "frames": len(records),
            "seconds": seconds,
            "tuples": len(result.catalog),
            "totals": dict(report.totals),
        })
    return runs


def test_discovery_accuracy_and_throughput(journey_runs):
    rows = []
    matched = discoverable = recovered = encoding_matched = 0
    for run in journey_runs:
        totals = run["totals"]
        matched += totals["matched"]
        discoverable += totals["discoverable"]
        recovered += totals["recovered"]
        encoding_matched += totals["encoding_matched"]
        rows.append([
            run["journey"],
            run["frames"],
            "%.3f" % totals["precision"],
            "%.3f" % totals["recall"],
            "%.3f" % totals["f1"],
            "%.3f" % totals["encoding_accuracy"],
            run["tuples"],
            "%.0f" % (run["frames"] / run["seconds"]),
            "%.0f" % (run["tuples"] / run["seconds"]),
        ])
    precision = matched / recovered if recovered else 0.0
    recall = matched / discoverable if discoverable else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    print_table(
        "Discovery accuracy (SYN, {} journeys x 60s)".format(
            len(journey_runs)
        ),
        ["journey", "frames", "prec", "recall", "f1", "enc",
         "tuples", "frames/s", "tuples/s"],
        rows,
    )
    print(
        "fleet micro-average: precision %.3f recall %.3f f1 %.3f"
        % (precision, recall, f1)
    )

    payload = {
        "benchmark": "discovery_accuracy",
        "dataset": "SYN",
        "journeys": len(journey_runs),
        "duration_seconds": 60.0,
        "f1_gate": F1_GATE,
        "micro": {
            "precision": precision,
            "recall": recall,
            "f1": f1,
            "encoding_accuracy": (
                encoding_matched / matched if matched else 0.0
            ),
        },
        "runs": journey_runs,
    }
    with open(_BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Hard gate: clean-trace boundary recovery.
    assert f1 >= F1_GATE, "micro F1 %.3f below gate %.2f" % (f1, F1_GATE)


def test_every_journey_recovers_without_spurious_messages(journey_runs):
    for run in journey_runs:
        assert run["totals"]["spurious_messages"] == 0
        assert run["totals"]["recovered"] > 0
