"""Degradation curves: pipeline quality under transport corruption.

Sweeps every corruption knob of :mod:`repro.vehicle.corruption` over a
severity grid on the SYN vehicle and measures how the extraction
pipeline degrades: signal-recovery and spurious rates against the
perfect run, reduction-ratio drift, dedup correctness and the
defect-absorption counters (exact duplicates dropped, short payloads
skipped).

The hard gate is the severity-0 identity: with every knob dialled to
zero the corrupted run must be byte-identical to the perfect run --
the hardening layer may not perturb clean traces at all.

Results are printed and written to ``BENCH_7.json`` (repo root).
"""

import json
import os

import pytest

from benchmarks.conftest import print_table
from repro.core import PipelineConfig
from repro.testing.degradation import (
    KNOBS,
    degradation_summary,
    run_degradation,
    validate_degrade_report,
)

pytestmark = pytest.mark.slow

_BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_7.json")

SEVERITIES = (0.0, 0.25, 0.5, 1.0)
DURATION = 30.0
SEED = 11


@pytest.fixture(scope="module")
def report(syn_bundle):
    records = syn_bundle.byte_records(DURATION)
    config = PipelineConfig(
        catalog=syn_bundle.catalog(),
        constraints=syn_bundle.default_constraints(),
    )
    return run_degradation(
        records, config, knobs=KNOBS, severities=SEVERITIES, seed=SEED
    )


def test_degradation_curves(report):
    print(degradation_summary(report))
    rows = [
        [
            point["knob"],
            "%g" % point["severity"],
            "yes" if point["byte_identical"] else "no",
            "%.3f" % point["signal_recovery"],
            "%.3f" % point["spurious_rate"],
            "%+.3f" % point["reduction_ratio_delta"],
            "%.3f" % point["dedup_correctness"],
            point["corruption_events"],
        ]
        for point in report.curves
    ]
    print_table(
        "Degradation sweep (SYN, {}s, severities {})".format(
            DURATION, "/".join("%g" % s for s in SEVERITIES)
        ),
        ["knob", "sev", "ident", "recovery", "spurious",
         "d(reduction)", "dedup", "events"],
        rows,
    )

    payload = {
        "benchmark": "degradation",
        "dataset": "SYN",
        "duration_seconds": DURATION,
        "seed": SEED,
        "severities": list(SEVERITIES),
        "baseline": dict(report.baseline),
        "curves": [dict(point) for point in report.curves],
    }
    with open(_BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # The report itself must satisfy the repro.degrade/1 schema.
    validate_degrade_report(report.to_dict())

    # Severity-0 identity gate, per knob.
    for knob in KNOBS:
        (zero,) = [
            p for p in report.points(knob) if p["severity"] == 0.0
        ]
        assert zero["byte_identical"] is True, (
            "knob %s perturbed a clean trace at severity 0" % knob
        )
        assert zero["signal_recovery"] == 1.0
        assert zero["spurious_rate"] == 0.0
        assert zero["reduction_ratio_delta"] == 0.0

    # Sanity: full severity must actually corrupt something somewhere.
    assert any(
        p["corruption_events"] > 0
        for p in report.curves
        if p["severity"] == 1.0
    )


def test_duplicates_and_truncation_are_absorbed(report):
    """The two satellite fixes, visible at benchmark scale: exact
    replays change nothing, truncated payloads are skipped not fatal."""
    (dup,) = [
        p
        for p in report.points("exact_duplicate")
        if p["severity"] == 1.0
    ]
    assert dup["exact_duplicates_dropped"] > 0
    assert dup["signal_recovery"] == 1.0
    assert dup["spurious_rate"] == 0.0

    (trunc,) = [
        p
        for p in report.points("payload_truncation")
        if p["severity"] == 1.0
    ]
    assert trunc["short_payload_skipped"] > 0
    assert trunc["spurious_rate"] == 0.0
