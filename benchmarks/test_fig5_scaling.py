"""Figure 5: execution time after interpretation and reduction.

The paper runs lines 3-11 of Algorithm 1 (preselection, interpretation,
splitting and unchanged-value reduction; "one channel per signal type is
analyzed") with a constant number of signal types over step-wise growing
subsets of each data set's K_b, and plots execution time against the
number of examples. Complexity is O(n): the curve is linear with
fluctuations from cluster communication.

This bench regenerates the series: per data set, prefixes of the
recorded trace are processed on the measured-makespan cluster executor
and the (examples, seconds) pairs are printed. Asserted shape: time
grows with examples and the growth is closer to linear than to
quadratic.
"""

import time

import pytest

from benchmarks.conftest import CLUSTER_WORKERS, DURATIONS, print_table
from repro.core import PipelineConfig, PreprocessingPipeline
from repro.core.reduction import reduce_signal
from repro.core.splitting import equality_split, split_signal_types
from repro.engine import EngineContext, SimulatedClusterExecutor, col
from repro.protocols.frames import BYTE_RECORD_COLUMNS

FRACTIONS = (0.25, 0.5, 0.75, 1.0)


def run_lines_3_to_11(ctx, records, bundle):
    """Lines 3-11 for one trace prefix; returns #examples interpreted."""
    k_b = ctx.table_from_rows(list(BYTE_RECORD_COLUMNS), records)
    config = PipelineConfig(
        catalog=bundle.catalog(), constraints=bundle.default_constraints()
    )
    pipeline = PreprocessingPipeline(config)
    k_s = pipeline.interpret(pipeline.preselect(k_b)).cache()
    examples = k_s.count()
    per_signal = split_signal_types(k_s, sorted(bundle.signal_ids))
    for s_id, table in per_signal.items():
        split = equality_split(table, s_id)
        constraints = config.constraints.for_signal(s_id)
        for _group, rep_table in split.tables():
            reduce_signal(rep_table, constraints).count()
    return examples


def measure_series(bundle, duration):
    records = bundle.byte_records(duration)
    series = []
    for fraction in FRACTIONS:
        prefix = records[: int(len(records) * fraction)]
        best = None
        examples = 0
        # Best-of-3 runs smooth out scheduler jitter on sub-100 ms tasks.
        for _attempt in range(3):
            # Coordination latency is zeroed: at this reproduction's
            # scale (10^4-10^5 examples instead of the paper's
            # 10^6-10^7) a fixed per-stage term would hide the O(n)
            # interpretation cost the figure demonstrates.
            ctx = EngineContext.simulated_cluster(
                num_workers=CLUSTER_WORKERS, stage_latency=0.0
            )
            ctx.executor.reset_clock()
            examples = run_lines_3_to_11(ctx, prefix, bundle)
            elapsed = ctx.executor.simulated_seconds
            best = elapsed if best is None else min(best, elapsed)
        series.append((examples, best))
    return series


@pytest.mark.parametrize("name", ["SYN", "LIG", "STA"])
def test_fig5_execution_time_vs_examples(benchmark, bundles, name):
    bundle = bundles[name]
    series = benchmark.pedantic(
        measure_series,
        args=(bundle, DURATIONS[name]),
        rounds=1,
        iterations=1,
    )

    print_table(
        "Figure 5 ({}) -- interpretation+reduction time vs #examples "
        "({} simulated workers)".format(name, CLUSTER_WORKERS),
        ["examples", "cluster seconds", "us per example"],
        [
            (n, round(t, 4), round(1e6 * t / n, 2) if n else "-")
            for n, t in series
        ],
    )

    examples = [n for n, _t in series]
    times = [t for _n, t in series]
    # More examples -> monotonically more work (allow tiny jitter).
    assert examples == sorted(examples)
    for (n_a, t_a), (n_b, t_b) in zip(series, series[1:]):
        assert t_b >= 0.7 * t_a
    # O(n) shape: quadrupling the examples must not blow up
    # super-linearly; allow generous constant-overhead headroom on the
    # small prefixes (the paper's curve fluctuates too).
    ratio_examples = examples[-1] / examples[0]
    ratio_time = times[-1] / times[0]
    assert ratio_time < 2.5 * ratio_examples


# ---------------------------------------------------------------------------
# Per-signal splitting: one routed pass vs one filter scan per signal
# ---------------------------------------------------------------------------


def _interpreted_k_s(bundle, duration):
    """Columns + partitions of the bundle's interpreted ``K_s``."""
    ctx = EngineContext.serial(default_parallelism=CLUSTER_WORKERS)
    k_b = ctx.table_from_rows(
        list(BYTE_RECORD_COLUMNS), bundle.byte_records(duration)
    )
    config = PipelineConfig(
        catalog=bundle.catalog(), constraints=bundle.default_constraints()
    )
    pipeline = PreprocessingPipeline(config)
    k_s = pipeline.interpret(pipeline.preselect(k_b))
    return k_s.columns, k_s.collect_partitions()


def measure_split_strategies(bundle, duration):
    columns, partitions = _interpreted_k_s(bundle, duration)
    signal_ids = sorted(bundle.signal_ids)

    # Old pattern: one full filter scan per signal type. Optimization is
    # off so the filter-to-split rewrite cannot rescue it.
    fanout_exec = SimulatedClusterExecutor(
        num_workers=CLUSTER_WORKERS, optimize_plans=False
    )
    k_s = EngineContext(fanout_exec).table_from_partitions(columns, partitions)
    start = time.perf_counter()
    for s_id in signal_ids:
        k_s.filter(col("s_id") == s_id).collect()
    fanout_seconds = time.perf_counter() - start

    # New pattern: one routed pass producing every group at once.
    split_exec = SimulatedClusterExecutor(num_workers=CLUSTER_WORKERS)
    k_s = EngineContext(split_exec).table_from_partitions(columns, partitions)
    start = time.perf_counter()
    groups = k_s.split_by_key("s_id", keys=signal_ids)
    for table in groups.values():
        table.collect()
    split_seconds = time.perf_counter() - start

    return {
        "signals": len(signal_ids),
        "rows": sum(len(p) for p in partitions),
        "partitions": len(partitions),
        "fanout_seconds": fanout_seconds,
        "fanout_tasks": fanout_exec.metrics.tasks_run,
        "split_seconds": split_seconds,
        "split_tasks": split_exec.metrics.tasks_run,
        "split_shuffles": split_exec.metrics.shuffles,
        "split_stages": split_exec.metrics.splits,
    }


def test_split_by_key_single_pass_vs_filter_fan_out(benchmark, syn_bundle):
    stats = benchmark.pedantic(
        measure_split_strategies,
        args=(syn_bundle, DURATIONS["SYN"]),
        rounds=1,
        iterations=1,
    )

    speedup = stats["fanout_seconds"] / max(stats["split_seconds"], 1e-9)
    print_table(
        "Per-signal split of SYN K_s -- filter fan-out vs SplitByKey "
        "({} signals, {} rows)".format(stats["signals"], stats["rows"]),
        ["strategy", "scan stages", "tasks", "seconds"],
        [
            ("filter fan-out", stats["signals"], stats["fanout_tasks"],
             round(stats["fanout_seconds"], 4)),
            ("split_by_key", 1, stats["split_tasks"],
             round(stats["split_seconds"], 4)),
            ("speedup", "-", "-", "{:.1f}x".format(speedup)),
        ],
    )

    # Scan count O(S) -> O(1): the fan-out runs one stage of P tasks per
    # signal; the split runs a single routed stage of P tasks.
    assert stats["split_stages"] == 1
    assert stats["split_shuffles"] == 1
    assert stats["split_tasks"] == stats["partitions"]
    assert stats["fanout_tasks"] == stats["signals"] * stats["partitions"]
    # And the single pass is measurably faster end to end.
    assert stats["split_seconds"] < stats["fanout_seconds"]
