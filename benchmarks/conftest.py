"""Shared benchmark fixtures.

Benchmarks regenerate the paper's tables and figures at a documented
scale (the paper's traces are 20 h from a real vehicle on a 70-node
cluster; here durations are tens of seconds on the measured-makespan
cluster model -- see DESIGN.md and EXPERIMENTS.md). Dataset bundles and
traces are session-scoped: generating them is simulation work, not part
of any measured region.
"""

from __future__ import annotations

import pytest

from repro.datasets import LIG_SPEC, STA_SPEC, SYN_SPEC, build_dataset

#: Simulated seconds of driving per data set used across benchmarks.
DURATIONS = {"SYN": 60.0, "LIG": 30.0, "STA": 40.0}

#: Virtual cluster size of the measured-makespan model (the paper
#: restricted itself to 10 Spark nodes as well).
CLUSTER_WORKERS = 10


@pytest.fixture(scope="session")
def syn_bundle():
    return build_dataset(SYN_SPEC)


@pytest.fixture(scope="session")
def lig_bundle():
    return build_dataset(LIG_SPEC)


@pytest.fixture(scope="session")
def sta_bundle():
    return build_dataset(STA_SPEC)


@pytest.fixture(scope="session")
def bundles(syn_bundle, lig_bundle, sta_bundle):
    return {"SYN": syn_bundle, "LIG": lig_bundle, "STA": sta_bundle}


@pytest.fixture(scope="session")
def journeys_syn():
    """Raw byte records of several distinct SYN journeys (Table 6)."""
    from repro.datasets import journeys

    return journeys(SYN_SPEC, 3, 60.0)


def print_table(title, header, rows):
    """Uniform console rendering for regenerated paper tables."""
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
