"""Quickstart: the paper's wiper example, end to end.

Builds a small vehicle (wiper on FA-CAN, heater on LIN, belt on CAN,
with a gateway duplicating the wiper message onto the body CAN), records
a raw trace ``K_b``, parameterizes the preprocessing framework for the
"wiper domain" and runs Algorithm 1 -- printing what every stage did and
the resulting state representation (the format of Table 4).

Run with::

    python examples/quickstart.py
"""

from repro.core import (
    Constraint,
    ConstraintSet,
    ExtensionSet,
    GapExtension,
    PipelineConfig,
    PreprocessingPipeline,
    UnchangedWithinCycle,
)
from repro.engine import EngineContext
from repro.network import MessageDefinition, NetworkDatabase, SignalDefinition
from repro.protocols import SignalEncoding
from repro.vehicle import Cyclic, Ecu, Gateway, Route, VehicleSimulation
from repro.vehicle import behaviors as bhv


def build_vehicle():
    """The communication database and ECUs of the running example."""
    wpos = SignalDefinition(
        "wpos", SignalEncoding(0, 16, scale=0.5), unit="deg"
    )
    wvel = SignalDefinition("wvel", SignalEncoding(16, 16), unit="rad/min")
    wiper = MessageDefinition(
        "WIPER_STATUS", 3, "FC", "CAN", 4, (wpos, wvel), cycle_time=0.1
    )
    heat = SignalDefinition(
        "heat",
        SignalEncoding(
            0, 3,
            value_table=(
                (0, "off"), (1, "low"), (2, "medium"), (3, "high"),
                (7, "invalid"),
            ),
        ),
        data_class="ordinal",
    )
    heater = MessageDefinition(
        "HEATER", 0x11, "K-LIN", "LIN", 1, (heat,), cycle_time=0.5
    )
    belt = SignalDefinition(
        "belt",
        SignalEncoding(0, 1, value_table=((0, "OFF"), (1, "ON"))),
        data_class="binary",
    )
    belt_msg = MessageDefinition(
        "BELT", 7, "FC", "CAN", 1, (belt,), cycle_time=0.2
    )
    database = NetworkDatabase((wiper, heater, belt_msg))

    wiper_ecu = Ecu("WiperEcu").add_transmission(
        wiper,
        {
            # Sweeping wiper with rare planted outliers (potential errors).
            "wpos": bhv.OutlierInjector(
                bhv.Sawtooth(amplitude=90.0, period=4.0),
                rate=0.005, magnitude=400.0, seed=7,
            ),
            "wvel": bhv.Constant(1),
        },
        Cyclic(0.1, seed=1),
    )
    body_ecu = (
        Ecu("BodyEcu")
        .add_transmission(
            heater,
            {"heat": bhv.OrdinalSteps(("off", "low", "medium", "high"), 10.0)},
            Cyclic(0.5, seed=2),
        )
        .add_transmission(
            belt_msg,
            {"belt": bhv.Toggle(30.0, "ON", "OFF")},
            Cyclic(0.2, seed=3),
        )
    )
    sim = VehicleSimulation(database, [wiper_ecu, body_ecu])
    # The central gateway forwards the wiper message onto the body CAN --
    # the redundancy the splitting stage removes again.
    sim.add_gateway(Gateway("ZGW", (Route("FC", 3, "BC", delay=0.002),)))
    return sim


def main():
    sim = build_vehicle()
    ctx = EngineContext.serial()

    print("=== 1. Record the raw trace K_b (the monitoring device) ===")
    k_b = sim.record_table(ctx, duration=60.0).cache()
    print("recorded {} byte records on channels {}".format(
        k_b.count(), sorted({r[2] for r in k_b.collect()})
    ))

    print("\n=== 2. Parameterize the framework for the wiper domain ===")
    catalog = sim.database.translation_catalog(["wpos", "wvel", "heat", "belt"])
    for u in catalog:
        print("  u_rel: {:6s} on {:5s} m_id={:3d}  {}".format(
            u.signal_id, u.channel_id, u.message_id, u.rule.describe()
        ))
    config = PipelineConfig(
        catalog=catalog,
        constraints=ConstraintSet((
            Constraint("wvel", True, (UnchangedWithinCycle(0.1),)),
            Constraint("heat", True, (UnchangedWithinCycle(0.5),)),
            Constraint("belt", True, (UnchangedWithinCycle(0.2),)),
        )),
        extensions=ExtensionSet((GapExtension("wpos"),)),
    )

    print("\n=== 3. Run Algorithm 1 ===")
    result = PreprocessingPipeline(config).run(k_b)
    print("stage counts:", result.counts)
    print("stage timings [s]:", {k: round(v, 3) for k, v in result.timings.items()})

    print("\n=== 4. Per-signal outcomes ===")
    for s_id, outcome in sorted(result.outcomes.items()):
        c = outcome.classification
        dedup = ""
        if outcome.groups and outcome.groups[0].corresponding:
            dedup = " (dedup: {} stands for {})".format(
                outcome.groups[0].representative,
                list(outcome.groups[0].corresponding),
            )
        print(
            "  {:6s} Z={} -> {}/{} branch; reduced {} -> {} rows{}".format(
                s_id,
                c.criteria.as_tuple(),
                c.data_type,
                c.branch,
                outcome.rows_before_reduction,
                outcome.rows_after_reduction,
                dedup,
            )
        )

    print("\n=== 5. State representation (Table 4 format, first rows) ===")
    rep = result.state_representation(["wpos", "heat", "belt", "wposGap"])
    print(rep.to_markdown(max_rows=12))

    outliers = [r for r in result.r_out.collect() if r[3] == "outlier"]
    print("\n=== 6. Potential errors (outliers kept by the alpha branch) ===")
    for t, s_id, b_id, _kind, value, _trend in outliers:
        print("  t={:7.3f}s {} on {}: v={}".format(t, s_id, b_id, value))


if __name__ == "__main__":
    main()
