"""Reproduce the state representation of Table 4 (the lights function).

The paper's Table 4 shows the merged state of five signal types --
headlight, lever control, driving speed, indicator light and light
switch -- including an injected speed outlier at t=22 s. This example
scripts the same scenario on the simulator, runs the full pipeline and
prints the resulting state representation, which reproduces the *shape*
of Table 4: nominal columns, a symbolized (level, trend) speed column
and the outlier row.

Run with::

    python examples/lights_state_representation.py
"""

from repro.core import (
    BranchConfig,
    Constraint,
    ConstraintSet,
    PipelineConfig,
    PreprocessingPipeline,
    UnchangedValue,
)
from repro.engine import EngineContext
from repro.network import MessageDefinition, NetworkDatabase, SignalDefinition
from repro.protocols import SignalEncoding
from repro.vehicle import Cyclic, Ecu, VehicleSimulation
from repro.vehicle import behaviors as bhv


def build_lights_vehicle():
    headlight = SignalDefinition(
        "headlight",
        SignalEncoding(
            0, 2,
            value_table=((0, "off"), (1, "parklight on"), (2, "headlight on")),
        ),
        data_class="nominal",
    )
    lever = SignalDefinition(
        "levercontrol",
        SignalEncoding(
            2, 2,
            value_table=((0, "default"), (1, "pushed up"), (2, "pushed down")),
        ),
        data_class="nominal",
    )
    indicator = SignalDefinition(
        "indicatorlight",
        SignalEncoding(
            4, 2,
            value_table=((0, "off"), (1, "left on"), (2, "right on")),
        ),
        data_class="nominal",
    )
    switch = SignalDefinition(
        "lightswitch",
        SignalEncoding(
            6, 2,
            value_table=(
                (0, "default"), (1, "turned halfway"), (2, "turned full"),
            ),
        ),
        data_class="nominal",
    )
    lights_msg = MessageDefinition(
        "LIGHTS", 0x60, "BC", "CAN", 1,
        (headlight, lever, indicator, switch), cycle_time=0.25,
    )
    speed = SignalDefinition(
        "speed", SignalEncoding(0, 16, scale=0.1), unit="km/h"
    )
    speed_msg = MessageDefinition(
        "SPEED", 0x55, "DC", "CAN", 2, (speed,), cycle_time=0.05
    )
    database = NetworkDatabase((lights_msg, speed_msg))

    # Scripted scenario matching the event sequence of Table 4.
    lights_ecu = Ecu("LightsEcu").add_transmission(
        lights_msg,
        {
            "headlight": bhv.EventPulse(
                ((20.1, 23.5),), active="parklight on", idle="off"
            ) if False else _headlight_script(),
            "levercontrol": bhv.EventPulse(
                ((4.0, 7.0),), active="pushed up", idle="default"
            ),
            "indicatorlight": bhv.EventPulse(
                ((4.25, 7.22),), active="left on", idle="off"
            ),
            "lightswitch": _switch_script(),
        },
        Cyclic(0.25),
    )
    speed_ecu = Ecu("DriveEcu").add_transmission(
        speed_msg,
        {"speed": _speed_script()},
        Cyclic(0.05),
    )
    return VehicleSimulation(database, [lights_ecu, speed_ecu])


def _headlight_script():
    """off -> parklight on (20.1 s) -> headlight on (23.5 s)."""

    class Script(bhv.Behavior):
        def sample(self, t):
            if t >= 23.5:
                return "headlight on"
            if t >= 20.1:
                return "parklight on"
            return "off"

    return Script()


def _switch_script():
    """default -> turned halfway (20 s) -> turned full (23 s)."""

    class Script(bhv.Behavior):
        def sample(self, t):
            if t >= 23.0:
                return "turned full"
            if t >= 20.0:
                return "turned halfway"
            return "default"

    return Script()


def _speed_script():
    """Accelerate until 14 s, hold high, with one outlier at 22 s."""

    class Script(bhv.Behavior):
        def sample(self, t):
            if 22.0 <= t < 22.05:
                return 800.0  # the Table 4 outlier
            if t < 14.0:
                return 60.0 + 5.0 * t  # increasing
            return 130.0  # high, steady

    return Script()


def main():
    sim = build_lights_vehicle()
    ctx = EngineContext.serial()
    k_b = sim.record_table(ctx, 26.0)

    config = PipelineConfig(
        catalog=sim.database.translation_catalog(
            ["headlight", "levercontrol", "speed", "indicatorlight", "lightswitch"]
        ),
        constraints=ConstraintSet(
            tuple(
                Constraint(s, True, (UnchangedValue(),))
                for s in (
                    "headlight", "levercontrol", "indicatorlight", "lightswitch",
                )
            )
        ),
        # A finer trend threshold so the long acceleration ramp registers
        # as "increasing" like the paper's speed column.
        branch_config=BranchConfig(trend_fraction=0.002),
    )
    result = PreprocessingPipeline(config).run(k_b)

    print("classification:")
    for s_id, (dtype, branch) in sorted(
        result.classification_summary().items()
    ):
        print("  {:15s} -> {} ({})".format(s_id, dtype, branch))

    rep = result.state_representation(
        ["headlight", "levercontrol", "speed", "indicatorlight", "lightswitch"]
    )
    print("\nState representation (compare with Table 4 of the paper):")
    interesting = [
        row for row in rep.rows
        # Keep rows where a nominal column changed or an outlier appears,
        # like the excerpt the paper prints.
        if _is_interesting(rep, row)
    ]
    print("| t | " + " | ".join(rep.columns) + " |")
    for row in interesting[:15]:
        cells = ["" if c is None else str(c) for c in row[1:]]
        print("| {:6.2f} | ".format(row[0]) + " | ".join(cells) + " |")


_previous = {}


def _is_interesting(rep, row):
    global _previous
    nominal_columns = [c for c in rep.columns if c != "speed"]
    state = dict(zip(("t",) + rep.columns, row))
    changed = any(
        state[c] != _previous.get(c) for c in nominal_columns
    )
    outlier = state["speed"] is not None and "outlier" in str(state["speed"])
    _previous = state
    return changed or outlier


if __name__ == "__main__":
    main()
