"""Scenario-driven verification: profile, parameterize, report.

A complete analyst workflow on a realistic commute scenario (city ->
highway -> city -> parked, with rain and darkness windows):

1. record the journey of the :class:`StandardVehicle`;
2. **profile** the trace -- what signals exist, how fast they send, which
   cycle times their gaps suggest;
3. parameterize the framework *from the profile* (observed cycle times
   become ``UnchangedWithinCycle`` constraints);
4. run Algorithm 1 and emit the markdown **verification report** for
   the developer, including the rain -> wiper correlation mined back out.

Run with::

    python examples/scenario_verification.py
"""

from repro.core import (
    PreprocessingPipeline,
    config_from_dict,
    interpret,
    preselect,
    profile_report,
    profile_trace,
)
from repro.engine import EngineContext
from repro.mining import AssociationRuleMiner
from repro.mining.report import ReportOptions, generate_report
from repro.vehicle.scenarios import StandardVehicle


def main():
    ctx = EngineContext.serial()
    vehicle = StandardVehicle(seed=3)
    sim, k_b = vehicle.run(ctx)
    k_b = k_b.cache()
    print("recorded {} rows over {} s".format(
        k_b.count(), vehicle.timeline.total_duration
    ))

    # -- 2. profile ---------------------------------------------------------
    catalog = sim.database.translation_catalog()
    k_s = interpret(preselect(k_b, catalog), catalog)
    profiles = profile_trace(k_s)
    print("\n=== Signal profile ===")
    print(profile_report(profiles, sort_by="rate"))

    # -- 3. parameterize from the profile ------------------------------------
    document = {
        "signals": sorted(profiles),
        "constraints": [
            {
                "signal": s,
                "type": "unchanged_within_cycle",
                "cycle_time": p.suggested_cycle_time(),
                "tolerance": 1.8,
            }
            for s, p in profiles.items()
        ],
        "extensions": [
            {"signal": "speed", "type": "rolling", "window": 10.0,
             "statistic": "mean"},
        ],
        "branch": {"sax_alphabet": 3},
    }
    config = config_from_dict(document, sim.database)
    print("\nconstraints derived from observed cycle times:")
    for c in document["constraints"]:
        print("  {:12s} cycle {:.2f} s".format(c["signal"], c["cycle_time"]))

    # -- 4. run + report --------------------------------------------------------
    result = PreprocessingPipeline(config).run(k_b)
    report = generate_report(
        result,
        title="Commute scenario verification",
        options=ReportOptions(state_rows=0, max_outliers=5),
    )
    print("\n" + report.to_markdown())

    rep = result.state_representation(
        ["rain", "wiper_active", "low_beam", "drive_phase"]
    )
    rules = AssociationRuleMiner(min_support=0.05, min_confidence=0.95).mine(rep)
    print("=== Mined correlations ===")
    for rule in rules[:6]:
        print(" ", rule)


if __name__ == "__main__":
    main()
