"""Fleet-scale signal extraction: proposed pipeline vs in-house tool.

A small-scale rendition of the paper's Table 6: several journeys of the
SYN vehicle are recorded; a handful of signals ("per domain usually
between 9 and 100 signals are extracted") are pulled out of every
journey, once with the distributed pipeline (preselect + interpret +
write to the table store, measured like the paper measures it) and once
with the sequential in-house tool (which must ingest-and-interpret every
known signal of every row).

Run with::

    python examples/fleet_extraction.py
"""

import tempfile
import time

from repro.baseline import InHouseTool
from repro.core import PipelineConfig, PreprocessingPipeline
from repro.datasets import SYN_SPEC, build_dataset
from repro.engine import EngineContext, TableStore
from repro.protocols.frames import BYTE_RECORD_COLUMNS

NUM_JOURNEYS = 3
JOURNEY_SECONDS = 60.0
FEW_SIGNALS = 3


def main():
    print("generating {} journeys of {} s each ...".format(
        NUM_JOURNEYS, JOURNEY_SECONDS
    ))
    bundles = [
        build_dataset(SYN_SPEC, seed_offset=j) for j in range(NUM_JOURNEYS)
    ]
    journeys = [b.byte_records(JOURNEY_SECONDS) for b in bundles]
    total_rows = sum(len(j) for j in journeys)
    database = bundles[0].database
    few = list(bundles[0].alpha_ids[:FEW_SIGNALS])
    print("total trace rows: {}".format(total_rows))

    # --- Proposed: distributed extraction + write to the store --------
    # The cluster is modelled by the measured-makespan executor (see
    # DESIGN.md): tasks run serially, and the executor accumulates the
    # wall time NUM_WORKERS real workers would need.
    ctx = EngineContext.simulated_cluster(num_workers=10)
    with tempfile.TemporaryDirectory() as tmp:
        store = TableStore(tmp)
        catalog = database.translation_catalog(few)
        pipeline = PreprocessingPipeline(PipelineConfig(catalog=catalog))
        tables = [
            ctx.table_from_rows(list(BYTE_RECORD_COLUMNS), journey).cache()
            for journey in journeys
        ]
        ctx.executor.reset_clock()
        start = time.perf_counter()
        extracted_rows = 0
        for index, k_b in enumerate(tables):
            k_s = pipeline.extract_signals(k_b, cache=False)
            manifest = store.write("journey_{:02d}".format(index), k_s)
            extracted_rows += manifest["num_rows"]
        proposed_wall = time.perf_counter() - start
        proposed_seconds = ctx.executor.simulated_seconds
        stored = store.list_tables()

    print("\nproposed pipeline ({} signals):".format(len(few)))
    print("  extracted rows          : {}".format(extracted_rows))
    print("  stored tables           : {}".format(stored))
    print("  single-core wall time   : {:.2f} s".format(proposed_wall))
    print("  10-worker cluster time  : {:.2f} s (measured makespan)".format(
        proposed_seconds
    ))

    # --- Baseline: sequential ingest-then-extract ----------------------
    tool = InHouseTool(database)
    start = time.perf_counter()
    tool.ingest_journeys(journeys)
    extracted = tool.extract(few)
    inhouse_seconds = time.perf_counter() - start
    print("\nin-house tool (must interpret ALL {} signals):".format(
        len(database.alphabet())
    ))
    print("  rows scanned        : {}".format(tool.stats.rows_scanned))
    print("  signals interpreted : {}".format(tool.stats.signals_interpreted))
    print("  extracted rows      : {}".format(
        sum(len(v) for v in extracted.values())
    ))
    print("  extraction time     : {:.2f} s".format(inhouse_seconds))

    print("\nspeedup of the proposed approach: {:.2f}x".format(
        inhouse_seconds / proposed_seconds
    ))
    print("(the paper reports 5.7x for 9 signals / 12 journeys on its "
          "cluster; shape, not absolute numbers, is what transfers)")


if __name__ == "__main__":
    main()
