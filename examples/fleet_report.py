"""Fleet-scale batch preprocessing with fault screening.

The outer loop of Fig. 1: a small fleet of SYN vehicles records journeys;
one domain's parameterization is applied to every journey; per-journey
signal tables land in a table store; and a screening pass flags the
journeys whose traces contain injected faults (one vehicle suffers an
ECU brown-out on each drive).

Run with::

    python examples/fleet_report.py
"""

import tempfile

from repro.core import PipelineConfig, PreprocessingPipeline
from repro.core.extension import CycleViolationExtension, ExtensionSet
from repro.datasets import SYN_SPEC
from repro.datasets.fleet import BatchExtractor, Fleet
from repro.engine import EngineContext, TableStore
from repro.mining import find_cycle_violations
from repro.protocols.frames import BYTE_RECORD_COLUMNS
from repro.vehicle.faults import MessageDropout, inject
from repro.vehicle.recorder import TraceRecorder

NUM_VEHICLES = 3
JOURNEYS_PER_VEHICLE = 2
JOURNEY_SECONDS = 30.0
FAULTY_VEHICLE = 1


def main():
    fleet = Fleet(
        SYN_SPEC,
        num_vehicles=NUM_VEHICLES,
        journeys_per_vehicle=JOURNEYS_PER_VEHICLE,
    )
    bundle = fleet.reference_bundle
    watch_signal = bundle.alpha_ids[0]
    watch_message = None
    for message in fleet.database.messages:
        if watch_signal in message.signal_names():
            watch_message = message
            break
    cycle = bundle.cycle_times[watch_signal]

    print("fleet: {} vehicles x {} journeys, watching {} (cycle {} s)".format(
        NUM_VEHICLES, JOURNEYS_PER_VEHICLE, watch_signal, cycle
    ))

    # Record all journeys; vehicle 1 gets a dropout fault injected.
    recorder = TraceRecorder()
    refs = fleet.journey_refs()
    journeys = []
    ground_truth = {}
    for ref in refs:
        # Fault injection needs frames (not byte records), so drive the
        # simulation layer directly for each journey.
        from repro.datasets import build_dataset

        sim = build_dataset(SYN_SPEC, seed_offset=ref.seed_offset()).simulation
        frames = sim.run(JOURNEY_SECONDS)
        if ref.vehicle_id == FAULTY_VEHICLE:
            frames, report = inject(
                frames,
                [MessageDropout(
                    watch_message.channel, watch_message.message_id,
                    burst_length=10, num_bursts=1,
                )],
                seed=ref.seed_offset(),
            )
            ground_truth[ref.name] = report.timestamps("dropout")
        journeys.append(recorder.record(frames))

    # One parameterization for the whole fleet.
    config = PipelineConfig(
        catalog=bundle.catalog([watch_signal]),
        extensions=ExtensionSet(
            (CycleViolationExtension(watch_signal, cycle, tolerance=3.0),)
        ),
    )

    ctx = EngineContext.serial()
    with tempfile.TemporaryDirectory() as tmp:
        extractor = BatchExtractor(
            fleet=fleet, config=config, store=TableStore(tmp),
            duration=JOURNEY_SECONDS,
        )
        report = extractor.run(ctx, refs=refs, journeys=journeys)
        print("\nbatch extraction:", report.summary())

        print("\nscreening for cycle violations per journey:")
        pipeline = PreprocessingPipeline(config)
        flagged = []
        for ref, records in zip(refs, journeys):
            k_b = ctx.table_from_rows(list(BYTE_RECORD_COLUMNS), records)
            result = pipeline.run(k_b)
            violations = [
                v for v in find_cycle_violations(result) if v.factor > 3.0
            ]
            marker = ""
            if violations:
                flagged.append(ref.name)
                marker = "  <-- {} violation(s), worst {:.1f}x".format(
                    len(violations), violations[0].factor
                )
            print("  {}: {} rows{}".format(
                ref.name, len(records), marker
            ))

        print("\nflagged journeys : {}".format(flagged))
        print("ground truth     : {}".format(sorted(ground_truth)))
        hit = set(flagged) == set(ground_truth)
        print("screening {} the injected faults".format(
            "exactly matches" if hit else "differs from"
        ))


if __name__ == "__main__":
    main()
