"""Fault diagnosis on the preprocessed representation (Sec. 4.4).

Plants three kinds of faults in a simulated vehicle --

* speed outliers (sensor glitches),
* dropped cycles of a status message (cycle-time violations),
* a wiper that blocks whenever it is active in freezing temperatures --

then runs the pipeline and demonstrates all four applications the paper
lists: outlier isolation with state context, cycle-violation detection
through extensions, association-rule mining of the error cause and
transition-graph analysis of rare transitions.

Run with::

    python examples/fault_diagnosis.py
"""

from repro.core import (
    Constraint,
    ConstraintSet,
    CycleViolationExtension,
    ExtensionSet,
    PipelineConfig,
    PreprocessingPipeline,
    UnchangedWithinCycle,
)
from repro.engine import EngineContext
from repro.mining import (
    AssociationRuleMiner,
    StateAnomalyDetector,
    TransitionGraph,
    find_cycle_violations,
    find_outliers,
    summarize_findings,
)
from repro.network import MessageDefinition, NetworkDatabase, SignalDefinition
from repro.protocols import SignalEncoding
from repro.vehicle import Cyclic, Ecu, VehicleSimulation
from repro.vehicle import behaviors as bhv


class WiperWithFault(bhv.Behavior):
    """Wiper state coupled to temperature: blocks when active and cold."""

    def __init__(self, temperature, activation):
        self.temperature = temperature
        self.activation = activation

    def sample(self, t):
        active = self.activation.sample(t) == "ON"
        cold = self.temperature.sample(t) < -10.0
        if active and cold:
            return "error_blocked"
        return "wiping" if active else "idle"

    def reset(self):
        self.temperature.reset()
        self.activation.reset()


def build_vehicle():
    temp_behavior = bhv.Sine(amplitude=20.0, period=120.0, mean=-5.0, seed=3)
    activation_behavior = bhv.Toggle(period=37.0, on_value="ON", off_value="OFF")

    speed = SignalDefinition("speed", SignalEncoding(0, 16, scale=0.1))
    temp = SignalDefinition(
        "temperature", SignalEncoding(16, 8, signed=True), unit="degC"
    )
    drive_msg = MessageDefinition(
        "DRIVE", 0x10, "DC", "CAN", 3, (speed, temp), cycle_time=0.05
    )
    wiper_active = SignalDefinition(
        "wiper_active",
        SignalEncoding(0, 1, value_table=((0, "OFF"), (1, "ON"))),
        data_class="binary",
    )
    wiper_state = SignalDefinition(
        "wiper_state",
        SignalEncoding(
            1, 2,
            value_table=((0, "idle"), (1, "wiping"), (2, "error_blocked")),
        ),
        data_class="nominal",
    )
    wiper_msg = MessageDefinition(
        "WIPER", 0x20, "FC", "CAN", 1,
        (wiper_active, wiper_state), cycle_time=0.2,
    )
    status = SignalDefinition(
        "status",
        SignalEncoding(0, 1, value_table=((0, "OFF"), (1, "ON"))),
        data_class="binary",
    )
    status_msg = MessageDefinition(
        "STATUS", 0x30, "FC", "CAN", 1, (status,), cycle_time=0.1
    )
    database = NetworkDatabase((drive_msg, wiper_msg, status_msg))

    ecu = (
        Ecu("E")
        .add_transmission(
            drive_msg,
            {
                "speed": bhv.OutlierInjector(
                    bhv.RandomWalk(step=0.8, seed=5, start=90.0,
                                   minimum=0.0, maximum=180.0),
                    rate=0.002, magnitude=500.0, seed=9,
                ),
                "temperature": temp_behavior,
            },
            Cyclic(0.05, seed=1),
        )
        .add_transmission(
            wiper_msg,
            {
                "wiper_active": activation_behavior,
                "wiper_state": WiperWithFault(
                    bhv.Sine(amplitude=20.0, period=120.0, mean=-5.0, seed=3),
                    bhv.Toggle(period=37.0, on_value="ON", off_value="OFF"),
                ),
            },
            Cyclic(0.2, seed=2),
        )
        .add_transmission(
            status_msg,
            {"status": bhv.Toggle(20.0, "ON", "OFF")},
            # 4% of cycles dropped: cycle-time violations to detect.
            Cyclic(0.1, drop_rate=0.04, seed=6),
        )
    )
    return VehicleSimulation(database, [ecu])


def main():
    sim = build_vehicle()
    ctx = EngineContext.serial()
    k_b = sim.record_table(ctx, 240.0)
    print("trace rows:", k_b.count())

    config = PipelineConfig(
        catalog=sim.database.translation_catalog(
            ["speed", "temperature", "wiper_active", "wiper_state", "status"]
        ),
        constraints=ConstraintSet((
            Constraint("wiper_active", True, (UnchangedWithinCycle(0.2),)),
            Constraint("wiper_state", True, (UnchangedWithinCycle(0.2),)),
            # 'status' is deliberately NOT reduced: the cycle-violation
            # extension (line 12 runs on K_red) should see the raw
            # transmission gaps, not gaps between retained value changes.
        )),
        extensions=ExtensionSet((
            CycleViolationExtension("status", 0.1, tolerance=1.8),
        )),
    )
    result = PreprocessingPipeline(config).run(k_b)

    print("\n--- Application 1: outliers as potential errors -------------")
    findings = find_outliers(result, max_prior_states=2)
    for line in summarize_findings(findings)[:5]:
        print(" ", line)
    print("  ({} outliers total)".format(len(findings)))

    print("\n--- Application 2: cycle-time violations via extensions -----")
    violations = find_cycle_violations(result)
    for v in violations[:5]:
        print(
        "  t={:8.2f}s {}: gap = {:.1f}x expected cycle".format(
            v.timestamp, v.signal_id, v.factor
        ))
    print("  ({} violations total)".format(len(violations)))

    print("\n--- Application 3: association rules for the wiper fault ----")
    rep = result.state_representation(
        ["temperature", "wiper_active", "wiper_state"]
    )
    miner = AssociationRuleMiner(min_support=0.02, min_confidence=0.9)
    rules = miner.mine(rep)
    error_rules = miner.rules_for_consequent(
        rules, "wiper_state", "error_blocked"
    )
    for rule in error_rules[:4]:
        print(" ", rule)

    print("\n--- Application 4: transition graph / rare transitions ------")
    graph = TransitionGraph.from_representation(
        rep, columns=["wiper_active", "wiper_state"]
    )
    print("  states: {}, transitions: {}".format(
        len(graph.graph.nodes), graph.total_transitions
    ))
    for pred, node, count in graph.predecessors_of("wiper_state", "error_blocked")[:3]:
        print("  into error: {} -> {} ({}x)".format(
            dict(pred), dict(node), count
        ))

    print("\n--- Application 5: anomaly hot-spots -------------------------")
    detector = StateAnomalyDetector(quantile=0.03, min_rows=20)
    anomalies = detector.detect(rep)
    for a in anomalies[:3]:
        print("  t={:8.2f}s severity={:5.1f} rarest={}".format(
            a.timestamp, a.severity, a.rare_items[0]
        ))
    recurrence_rules = detector.to_extension_rules(anomalies, "wiper_state")
    print("  derived {} recurrence extension rule(s) for future runs".format(
        len(recurrence_rules)
    ))


if __name__ == "__main__":
    main()
